package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/xai-db/relativekeys/internal/feature"
)

// walLines encodes n sequential records (seq 1..n) and returns them
// individually so tests can splice damage at exact byte offsets.
func walLines(t *testing.T, n int) [][]byte {
	t.Helper()
	lines := make([][]byte, n)
	for i := range lines {
		li := feature.Labeled{X: feature.Instance{int32(i), int32(i % 2)}, Y: int32(i % 2)}
		b, err := EncodeWALRecord(uint64(i+1), li)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = b
	}
	return lines
}

func TestReplayWALFromTable(t *testing.T) {
	lines := walLines(t, 5)
	clean := bytes.Join(lines, nil)
	prefix3 := bytes.Join(lines[:3], nil)

	torn := append(append([]byte(nil), prefix3...), lines[3][:len(lines[3])/2]...)
	tornWithNL := append(append([]byte(nil), prefix3...), []byte("{\"seq\":9,\"garbage\n")...)
	midDamage := append(append([]byte(nil), prefix3...), []byte("{torn}\n")...)
	midDamage = append(midDamage, lines[4]...)
	noFinalNL := clean[:len(clean)-1]
	withBlank := append(append([]byte(nil), prefix3...), '\n')
	withBlank = append(withBlank, lines[3]...)

	cases := []struct {
		name    string
		input   []byte
		from    uint64
		applied int
		lastSeq uint64
		offset  int64
		torn    bool
		wantErr error
	}{
		{name: "clean EOF", input: clean, applied: 5, lastSeq: 5, offset: int64(len(clean))},
		{name: "cursor skips applied prefix", input: clean, from: 3, applied: 2, lastSeq: 5, offset: int64(len(clean))},
		{name: "cursor past end applies nothing", input: clean, from: 99, applied: 0, lastSeq: 5, offset: int64(len(clean))},
		{name: "torn tail mid-record", input: torn, applied: 3, lastSeq: 3, offset: int64(len(prefix3)), torn: true},
		{name: "damaged final line with newline", input: tornWithNL, applied: 3, lastSeq: 3, offset: int64(len(prefix3)), torn: true},
		{name: "mid-file damage is corruption, not a tail", input: midDamage, applied: 3, lastSeq: 3, offset: int64(len(prefix3)), wantErr: ErrCorruptWAL},
		{name: "final line without newline still counts", input: noFinalNL, applied: 5, lastSeq: 5, offset: int64(len(noFinalNL))},
		{name: "blank line between records", input: withBlank, applied: 4, lastSeq: 4, offset: int64(len(withBlank))},
		{name: "empty log", input: nil, applied: 0, lastSeq: 0, offset: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var seqs []uint64
			res, err := ReplayWALFrom(bytes.NewReader(tc.input), tc.from, func(seq uint64, li feature.Labeled) error {
				seqs = append(seqs, seq)
				return nil
			})
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
			} else if err != nil {
				t.Fatal(err)
			}
			if res.Applied != tc.applied || res.LastSeq != tc.lastSeq || res.Offset != tc.offset || res.Torn != tc.torn {
				t.Fatalf("result %+v, want applied=%d lastSeq=%d offset=%d torn=%v",
					res, tc.applied, tc.lastSeq, tc.offset, tc.torn)
			}
			if len(seqs) != tc.applied {
				t.Fatalf("fn saw %d records, want %d", len(seqs), tc.applied)
			}
			for i := 1; i < len(seqs); i++ {
				if seqs[i] != seqs[i-1]+1 {
					t.Fatalf("fn saw non-consecutive seqs %v", seqs)
				}
			}
			if tc.applied > 0 && seqs[0] != tc.from+1 {
				t.Fatalf("fn started at seq %d, want %d", seqs[0], tc.from+1)
			}
		})
	}
}

// TestReplayWALFromOffsetTruncateRoundTrip exercises the double-crash fix:
// truncating a torn log at Offset and appending fresh records must yield a
// log whose later replay sees every record — the torn garbage never shadows
// appends that land after it.
func TestReplayWALFromOffsetTruncateRoundTrip(t *testing.T) {
	lines := walLines(t, 4)
	path := filepath.Join(t.TempDir(), "obs.wal")
	torn := append(bytes.Join(lines[:3], nil), lines[3][:8]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := ReplayWALFileFrom(path, 0, func(uint64, feature.Labeled) error { return nil })
	if err != nil || !res.Torn {
		t.Fatalf("res=%+v err=%v, want a torn tail", res, err)
	}
	if err := os.Truncate(path, res.Offset); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	li := feature.Labeled{X: feature.Instance{7, 1}, Y: 1}
	if err := w.Append(res.LastSeq+1, li); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res2, err := ReplayWALFileFrom(path, 0, func(uint64, feature.Labeled) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res2.Torn || res2.Applied != 4 || res2.LastSeq != 4 {
		t.Fatalf("after truncate+append: %+v, want 4 clean records", res2)
	}
}

func TestReplayWALFromFnErrorAborts(t *testing.T) {
	lines := walLines(t, 3)
	boom := errors.New("boom")
	res, err := ReplayWALFrom(bytes.NewReader(bytes.Join(lines, nil)), 0, func(seq uint64, li feature.Labeled) error {
		if seq == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the fn error", err)
	}
	if res.Applied != 1 {
		t.Fatalf("applied %d before abort, want 1", res.Applied)
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.wal")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	li := feature.Labeled{X: feature.Instance{1, 0}, Y: 0}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(seq, li); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	// O_APPEND writes continue from the new (zero) end of file.
	if err := w.Append(4, li); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ReplayWALFileFrom(path, 0, func(uint64, feature.Labeled) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.LastSeq != 4 || res.Torn {
		t.Fatalf("post-truncate replay %+v, want only seq 4", res)
	}
}

func TestWALTruncateUnsupportedSink(t *testing.T) {
	var sink nopSyncWriter
	w := NewWAL(&sink)
	if err := w.Truncate(); !errors.Is(err, ErrNotTruncatable) {
		t.Fatalf("Truncate on a pipe sink = %v, want ErrNotTruncatable", err)
	}
}

type nopSyncWriter struct{ strings.Builder }

func (*nopSyncWriter) Sync() error { return nil }

func TestEncodeDecodeWALRecordRoundTrip(t *testing.T) {
	li := feature.Labeled{X: feature.Instance{3, 1, 4}, Y: 1}
	b, err := EncodeWALRecord(42, li)
	if err != nil {
		t.Fatal(err)
	}
	seq, got, err := DecodeWALRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || got.Y != li.Y || len(got.X) != len(li.X) {
		t.Fatalf("round trip gave seq=%d li=%+v", seq, got)
	}
	// Any flipped byte inside the payload must fail the CRC.
	mut := append([]byte(nil), b...)
	mut[bytes.IndexByte(mut, '[')+1] ^= 1
	if _, _, err := DecodeWALRecord(mut); err == nil {
		t.Fatal("decode accepted a corrupted record")
	}
}

func TestEncodeDecodeSnapshotRoundTrip(t *testing.T) {
	schema := crashSchema(t)
	items := []feature.Labeled{
		{X: feature.Instance{0, 1}, Y: 1},
		{X: feature.Instance{2, 0}, Y: 0},
	}
	var buf bytes.Buffer
	if err := EncodeSnapshot(&buf, schema, items, 17); err != nil {
		t.Fatal(err)
	}
	gotSchema, gotItems, seq, err := DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 17 || len(gotItems) != 2 || len(gotSchema.Attrs) != len(schema.Attrs) {
		t.Fatalf("decode gave seq=%d items=%d", seq, len(gotItems))
	}
	// Follower catch-up refuses a damaged stream the same way LoadSnapshot
	// refuses a damaged file.
	mut := bytes.Replace(buf.Bytes(), []byte(`"seq":17`), []byte(`"seq":18`), 1)
	if _, _, _, err := DecodeSnapshot(bytes.NewReader(mut)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("decode of tampered snapshot = %v, want ErrCorruptSnapshot", err)
	}
}
