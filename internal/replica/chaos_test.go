package replica

import (
	"net/http"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/faultinject"
	"github.com/xai-db/relativekeys/internal/feature"
)

// chaosClient builds an http.Client whose every connection runs through the
// seeded fault injector: refused dials, injected latency, and mid-record
// stream cuts at exact byte offsets. Keep-alives are off so each request
// consumes its own entry in the cut schedule.
func chaosClient(seed int64, cuts []int64) (*http.Client, *faultinject.FlakyDialer) {
	fd := &faultinject.FlakyDialer{
		Inj:          faultinject.New(seed),
		DialFailProb: 0.15,
		Latency:      3 * time.Millisecond,
		LatencyProb:  0.3,
		Cuts:         cuts,
	}
	return &http.Client{Transport: &http.Transport{
		DialContext:       fd.DialContext,
		DisableKeepAlives: true,
	}}, fd
}

// allProbes enumerates every instance/label pair the schema admits, so the
// differential check is exhaustive rather than sampled.
func allProbes(s *feature.Schema) []feature.Labeled {
	var probes []feature.Labeled
	for i0 := 0; i0 < len(s.Attrs[0].Values); i0++ {
		for i1 := 0; i1 < len(s.Attrs[1].Values); i1++ {
			for i2 := 0; i2 < len(s.Attrs[2].Values); i2++ {
				for y := 0; y < len(s.Labels); y++ {
					probes = append(probes, feature.Labeled{
						X: feature.Instance{feature.Value(i0), feature.Value(i1), feature.Value(i2)},
						Y: feature.Label(y),
					})
				}
			}
		}
	}
	return probes
}

// probeStaleness issues one bounded explain against the follower and fails
// the test if a 200 response admits to staleness beyond the bound — the
// contract is shed-don't-lie, under chaos included.
func probeStaleness(t *testing.T, followerURL string, schema *feature.Schema, li feature.Labeled, boundMS int64) (ok200 bool) {
	t.Helper()
	er, status := explainOn(t, followerURL, schema, li, boundMS)
	if status != http.StatusOK {
		return false
	}
	if er.StalenessMS == nil {
		t.Fatalf("follower 200 under a staleness bound carries no staleness_ms")
	}
	if *er.StalenessMS < 0 || *er.StalenessMS > boundMS {
		t.Fatalf("staleness contract violated: bound %dms, response admits %dms", boundMS, *er.StalenessMS)
	}
	if er.ReplicaSeq == nil {
		t.Fatal("follower 200 carries no replica_seq")
	}
	return true
}

// TestChaosReplicationConvergence is the failover suite from DESIGN.md §14:
// a follower tails a compacting primary through seeded stream cuts, flaky
// dials, and injected latency; mid-run the primary restarts (epoch bump) and
// the follower crash-restarts from its own state dir. The run must converge
// to byte-identical explanations for every possible probe, and no bounded
// read may ever overstate its freshness.
func TestChaosReplicationConvergence(t *testing.T) {
	batch, phasesN := 40, 3
	if testing.Short() {
		batch, phasesN = 16, 2
	}
	schema := testSchema(t)
	opts := primaryOpts{snapshotEvery: 8, compactWAL: true}
	p := newTestPrimary(t, t.TempDir(), opts)

	// Cut schedule: tight budgets early (handshake and history torn
	// mid-record), then looser ones; -1 entries let some streams live.
	cuts := []int64{60, 200, -1, 90, 500, -1, -1, 150, 1 << 12, -1}
	client, fd := chaosClient(1, cuts)
	fdir := t.TempDir()
	f := startFollower(t, fdir, p.URL(), client)
	furl := serveFollower(t, f)

	rows := testRows(101, batch*phasesN, schema)
	seq := uint64(0)
	probes := allProbes(schema)
	answered := 0
	for phase := 0; phase < phasesN; phase++ {
		p.warm(rows[phase*batch : (phase+1)*batch])
		seq += uint64(batch)
		// Bounded reads during the storm: shed or honest, never stale-and-200.
		for i, li := range probes[:6] {
			bound := int64(2000)
			if i%3 == 0 {
				bound = 1 // nearly unmeetable: exercises the shed path
			}
			if probeStaleness(t, furl, schema, li, bound) {
				answered++
			}
		}
		switch phase {
		case 0:
			// Primary crash/recover: same address, new epoch, recovered state.
			// In-flight streams die; the follower must fence and re-anchor.
			p.restart(opts)
		case 1:
			// Follower crash/recover: resumes from its own snapshots and
			// persisted epoch, through a fresh chaos transport.
			f.stop()
			client2, _ := chaosClient(2, cuts)
			f = startFollower(t, fdir, p.URL(), client2)
			furl = serveFollower(t, f)
		}
	}

	// Quiesce: no more writes; the follower must reach the primary watermark.
	f.caughtUpTo(seq, 30*time.Second)
	waitFor(t, 10*time.Second, "follower context to match primary",
		func() bool { return f.srv.ContextSize() == p.srv.ContextSize() })

	// The chaos actually bit: the first transport saw cut connections.
	if fd.Dials() == 0 {
		t.Fatal("fault injector never saw a dial")
	}
	// Snapshot catch-up deliberately installs state before adopting the
	// epoch (a crash between the two must re-fence, DESIGN.md §14), so the
	// watermark can be current a beat before the epoch is — wait for the
	// adoption rather than asserting a point in time.
	waitFor(t, 10*time.Second, "follower to adopt the primary's epoch",
		func() bool { return f.srv.Epoch() == p.srv.Epoch() })

	// Differential check over the full instance/label space: a caught-up
	// follower is indistinguishable from its primary, byte for byte.
	assertConverged(t, p.URL(), furl, schema, probes)

	// A caught-up, quiesced follower must answer a generous bound for any
	// probe the primary itself can answer (some probes legitimately have no
	// α-conformant key — 409 on both sides).
	var answerable *feature.Labeled
	for i := range probes {
		if _, status := explainOn(t, p.URL(), schema, probes[i], 0); status == http.StatusOK {
			answerable = &probes[i]
			break
		}
	}
	if answerable == nil {
		t.Fatal("no probe has a key on the primary; the differential check was vacuous")
	}
	waitFor(t, 5*time.Second, "bounded reads to pass after quiesce", func() bool {
		return probeStaleness(t, furl, schema, *answerable, 10_000)
	})
	t.Logf("chaos run: %d bounded reads answered mid-storm, %d dials on first transport, %d reconnects, %d snapshot catch-ups",
		answered, fd.Dials(), f.fol.Reconnects(), f.fol.SnapshotCatchups())
}

// TestChaosEveryConnectionCut drives the follower through a schedule where
// every early connection is torn at a small exact offset: CRC validation must
// discard every half-shipped record and the watermark cursor must make the
// retries exact, so the follower still converges without ever applying a
// corrupt or duplicate row.
func TestChaosEveryConnectionCut(t *testing.T) {
	schema := testSchema(t)
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	rows := testRows(201, 20, schema)
	p.warm(rows)

	cuts := make([]int64, 12)
	for i := range cuts {
		cuts[i] = int64(40 + 37*i) // every stream torn mid-line, offsets staggered
	}
	fd := &faultinject.FlakyDialer{Inj: faultinject.New(7), Cuts: cuts}
	client := &http.Client{Transport: &http.Transport{
		DialContext:       fd.DialContext,
		DisableKeepAlives: true,
	}}
	f := startFollower(t, t.TempDir(), p.URL(), client)
	f.caughtUpTo(20, 30*time.Second)

	if f.srv.ContextSize() != p.srv.ContextSize() {
		t.Fatalf("follower holds %d rows, primary %d", f.srv.ContextSize(), p.srv.ContextSize())
	}
	if fd.Dials() <= len(cuts) {
		t.Fatalf("only %d dials: the cut schedule was not exhausted", fd.Dials())
	}
	assertConverged(t, p.URL(), serveFollower(t, f), schema, allProbes(schema))
}
