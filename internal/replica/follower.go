package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"

	"github.com/xai-db/relativekeys/internal/backoff"
	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/obs"
	"github.com/xai-db/relativekeys/internal/persist"
	"github.com/xai-db/relativekeys/internal/service"
)

// Applier is the follower-side server surface the tailer drives,
// structurally satisfied by *service.Server in follower mode.
type Applier interface {
	ApplyReplicated(ctx context.Context, seq uint64, li feature.Labeled) error
	InstallSnapshot(ctx context.Context, schema *feature.Schema, items []feature.Labeled, seq uint64) error
	ReplicaHeartbeat(primarySeq uint64)
	SetReplicaEpoch(epoch string)
	Epoch() string
	Seq() uint64
}

// Config wires a Follower.
type Config struct {
	PrimaryURL string       // base URL of the primary, e.g. http://primary:8080
	HTTP       *http.Client // nil = http.DefaultClient; chaos tests inject faulty transports here

	// Backoff paces reconnects — the same policy the retrying client uses,
	// so follower pressure on a struggling primary follows the one
	// repo-wide curve. Zero value = 50ms doubling to 2s with jitter.
	Backoff backoff.Policy

	// StateDir persists the primary epoch the follower's state mirrors ("" =
	// fencing survives only this process). The applied-seq watermark itself
	// rides in the server's atomic snapshots, not here.
	StateDir string

	Logger *obs.Logger // nil = silent
}

// errNeedSnapshot classifies stream failures that resuming the WAL cannot
// fix: the primary fenced our epoch (409), compacted past our watermark
// (410), or advertises a different epoch than our state mirrors. The only
// way forward is /snapshot.
var errNeedSnapshot = errors.New("replica: wal tail lost; snapshot catch-up required")

// Follower tails a primary and applies its observation stream. Run drives
// the loop; the other methods surface progress for tests and ops.
type Follower struct {
	cfg Config
	app Applier

	epoch string // the primary life our state mirrors; "" before first contact

	reconnects       atomic.Int64
	snapshotCatchups atomic.Int64
}

// NewFollower builds a follower for app. When cfg.StateDir holds an epoch
// from a previous run it is restored, so fencing survives follower restarts.
func NewFollower(cfg Config, app Applier) (*Follower, error) {
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	f := &Follower{cfg: cfg, app: app}
	if cfg.StateDir != "" {
		e, err := LoadEpoch(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		f.epoch = e
	}
	if f.epoch != "" {
		app.SetReplicaEpoch(f.epoch)
	}
	return f, nil
}

// Reconnects reports stream re-establishments since start.
func (f *Follower) Reconnects() int64 { return f.reconnects.Load() }

// SnapshotCatchups reports snapshot re-anchors since start.
func (f *Follower) SnapshotCatchups() int64 { return f.snapshotCatchups.Load() }

// Run tails the primary until ctx ends: stream from the applied watermark,
// classify failures, fall back to snapshot catch-up when the tail is lost,
// and pace every reconnect with the shared backoff policy (reset whenever a
// connection made progress, so a healthy stream that drops reconnects fast).
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progress, err := f.stream(ctx)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if errors.Is(err, errNeedSnapshot) {
			if serr := f.snapshotCatchup(ctx); serr != nil {
				f.cfg.Logger.Warn("snapshot catch-up failed", "err", serr)
			} else {
				progress = true
			}
		} else if err != nil {
			f.cfg.Logger.Warn("replication stream ended", "err", err)
		}
		if progress {
			attempt = 0
		} else {
			attempt++
		}
		f.reconnects.Add(1)
		replReconnects.Inc()
		if werr := f.cfg.Backoff.Wait(ctx, attempt, 0); werr != nil {
			return werr
		}
	}
}

// stream opens /replicate from the applied watermark and applies lines until
// the stream dies. Reports whether any record was applied (progress resets
// the backoff) and how the stream ended; errNeedSnapshot means resuming the
// WAL cannot help.
func (f *Follower) stream(ctx context.Context) (bool, error) {
	u := fmt.Sprintf("%s/replicate?from=%d", f.cfg.PrimaryURL, f.app.Seq())
	if f.epoch != "" {
		u += "&epoch=" + url.QueryEscape(f.epoch)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.cfg.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close() //rkvet:ignore dropperr read-side body close; nothing to recover
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict, http.StatusGone:
		return false, errNeedSnapshot
	default:
		return false, fmt.Errorf("replica: /replicate: %s", resp.Status)
	}
	if e := resp.Header.Get(EpochHeader); f.epoch != "" && e != "" && e != f.epoch {
		// Belt over the query-param fencing: never apply another life's tail.
		return false, errNeedSnapshot
	}

	progress := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var hb heartbeat
		if err := json.Unmarshal(line, &hb); err != nil {
			// Not even JSON: the stream was cut mid-record. Reconnect; the
			// watermark makes the retry exact.
			return progress, fmt.Errorf("replica: torn stream line: %w", err)
		}
		if hb.HB {
			if f.epoch == "" && hb.Epoch != "" {
				// First contact: adopt the primary's life before applying
				// anything from it.
				if err := f.setEpoch(hb.Epoch); err != nil {
					return progress, err
				}
			}
			if hb.Epoch != f.epoch {
				return progress, errNeedSnapshot
			}
			f.app.ReplicaHeartbeat(hb.Seq)
			continue
		}
		seq, li, err := persist.DecodeWALRecord(line)
		if err != nil {
			// CRC failure: a torn or corrupted line. Never apply it.
			return progress, fmt.Errorf("replica: stream record: %w", err)
		}
		// A shipped record proves the primary's durable watermark reaches
		// its seq; count it before applying so catching up to the stream
		// head marks the follower synced.
		f.app.ReplicaHeartbeat(seq)
		if err := f.app.ApplyReplicated(ctx, seq, li); err != nil {
			if errors.Is(err, service.ErrReplicaGap) {
				// Records were lost between hub and socket (e.g. the hub
				// dropped us mid-buffer). The watermark re-anchors the
				// stream; no snapshot needed.
				return progress, fmt.Errorf("replica: %w", err)
			}
			return progress, err
		}
		progress = true
	}
	if err := sc.Err(); err != nil {
		return progress, err
	}
	return progress, nil // clean EOF: primary closed (restart or shutdown)
}

// snapshotCatchup re-anchors the follower on the primary's current state:
// GET /snapshot, decode + CRC-check, install atomically, then adopt the
// primary's epoch. Ordering matters — the epoch is persisted only after the
// snapshot install succeeds, so a crash mid-catch-up leaves a state/epoch
// pair that the fencing check sends straight back here.
func (f *Follower) snapshotCatchup(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.PrimaryURL+"/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() //rkvet:ignore dropperr read-side body close; nothing to recover
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: /snapshot: %s", resp.Status)
	}
	epoch := resp.Header.Get(EpochHeader)
	schema, items, seq, err := persist.DecodeSnapshot(resp.Body)
	if err != nil {
		return err
	}
	if hdr := resp.Header.Get(SeqHeader); hdr != "" {
		// The header is advisory; the CRC-checked body wins on mismatch.
		if v, perr := strconv.ParseUint(hdr, 10, 64); perr == nil && v != seq {
			f.cfg.Logger.Warn("snapshot header/body watermark mismatch", "header", v, "body", seq)
		}
	}
	if err := f.app.InstallSnapshot(ctx, schema, items, seq); err != nil {
		return err
	}
	if epoch != "" && epoch != f.epoch {
		if err := f.setEpoch(epoch); err != nil {
			return err
		}
	}
	f.app.ReplicaHeartbeat(seq)
	f.snapshotCatchups.Add(1)
	replSnapshotCatchups.Inc()
	f.cfg.Logger.Info("snapshot catch-up complete", "seq", seq, "epoch", epoch, "rows", len(items))
	return nil
}

// setEpoch adopts a primary life: durable first (when a state dir exists),
// then visible in /healthz via the applier.
func (f *Follower) setEpoch(epoch string) error {
	if f.cfg.StateDir != "" {
		if err := SaveEpoch(f.cfg.StateDir, epoch); err != nil {
			return err
		}
	}
	f.epoch = epoch
	f.app.SetReplicaEpoch(epoch)
	return nil
}
