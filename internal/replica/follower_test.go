package replica

import (
	"testing"
	"time"
)

func TestFollowerTailsPrimary(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	rows := testRows(11, 12, p.schema)
	p.warm(rows[:6])

	f := startFollower(t, t.TempDir(), p.URL(), nil)
	f.caughtUpTo(6, 5*time.Second)

	// Live tail: new primary observations reach the follower.
	p.warm(rows[6:])
	f.caughtUpTo(12, 5*time.Second)
	if got, want := f.srv.ContextSize(), p.srv.ContextSize(); got != want {
		t.Fatalf("follower holds %d rows, primary %d", got, want)
	}
	// The follower adopted the primary's life.
	if f.srv.Epoch() != p.srv.Epoch() {
		t.Fatalf("follower epoch %q, primary %q", f.srv.Epoch(), p.srv.Epoch())
	}
	// And serves byte-identical explanations.
	assertConverged(t, p.URL(), serveFollower(t, f), p.schema, testRows(99, 10, p.schema))
}

func TestFollowerSurvivesPrimaryRestartWithEpochBump(t *testing.T) {
	pdir := t.TempDir()
	p := newTestPrimary(t, pdir, primaryOpts{snapshotEvery: 100})
	rows := testRows(21, 16, p.schema)
	p.warm(rows[:8])

	f := startFollower(t, t.TempDir(), p.URL(), nil)
	f.caughtUpTo(8, 5*time.Second)
	oldEpoch := f.srv.Epoch()

	// The primary dies and comes back: a new epoch on the same address. The
	// follower must fence its old stream and re-anchor, then keep tailing.
	p.restart(primaryOpts{snapshotEvery: 100})
	p.warm(rows[8:])
	f.caughtUpTo(16, 10*time.Second)
	if f.srv.Epoch() == oldEpoch {
		t.Fatalf("follower kept pre-restart epoch %q", oldEpoch)
	}
	if f.srv.Epoch() != p.srv.Epoch() {
		t.Fatalf("follower epoch %q, primary %q", f.srv.Epoch(), p.srv.Epoch())
	}
	assertConverged(t, p.URL(), serveFollower(t, f), p.schema, testRows(98, 10, p.schema))
}

func TestFollowerSnapshotCatchupPastCompaction(t *testing.T) {
	// A compacting primary that outruns a disconnected follower forces the
	// snapshot path: the WAL tail the follower needs is simply gone (410).
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 4, compactWAL: true})
	rows := testRows(31, 24, p.schema)
	p.warm(rows[:4])

	f := startFollower(t, t.TempDir(), p.URL(), nil)
	f.caughtUpTo(4, 5*time.Second)
	f.stop()

	// While the follower is down the primary compacts far past seq 4.
	p.warm(rows[4:])
	if base := p.srv.WALBase(); base <= 4 {
		t.Fatalf("wal base = %d, want past the follower watermark 4", base)
	}

	f2 := startFollower(t, f.dir, p.URL(), nil)
	f2.caughtUpTo(24, 10*time.Second)
	if f2.fol.SnapshotCatchups() == 0 {
		t.Fatal("follower resumed a compacted tail without a snapshot catch-up")
	}
	assertConverged(t, p.URL(), serveFollower(t, f2), p.schema, testRows(97, 10, p.schema))
}

func TestFollowerRestartResumesFromWatermark(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	rows := testRows(41, 12, p.schema)
	p.warm(rows[:8])

	fdir := t.TempDir()
	f := startFollower(t, fdir, p.URL(), nil)
	f.caughtUpTo(8, 5*time.Second)
	epoch := f.srv.Epoch()
	f.stop()

	// Crash/restart: the new follower recovers rows + watermark from its own
	// periodic snapshots and the epoch from its state dir, then resumes the
	// stream from where it left off — no snapshot catch-up needed.
	f2 := startFollower(t, fdir, p.URL(), nil)
	if got := f2.srv.Epoch(); got != epoch {
		t.Fatalf("restarted follower epoch %q, want persisted %q", got, epoch)
	}
	p.warm(rows[8:])
	f2.caughtUpTo(12, 5*time.Second)
	if f2.fol.SnapshotCatchups() != 0 {
		t.Fatalf("follower took %d snapshot catch-ups for an intact tail", f2.fol.SnapshotCatchups())
	}
	assertConverged(t, p.URL(), serveFollower(t, f2), p.schema, testRows(96, 10, p.schema))
}
