package replica

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/obs"
	"github.com/xai-db/relativekeys/internal/persist"
)

// HubConfig wires a Hub to its primary server without importing service: the
// closures read the server's replication surface (cmd/cceserver binds them).
type HubConfig struct {
	Epoch string // this primary life's identity, minted by NextEpoch

	Seq  func() uint64 // durable observation watermark
	Base func() uint64 // highest seq NOT in the log (compaction); 0 = complete log

	// OpenWAL opens the on-disk observation log for history streaming; nil
	// or a nil reader means no log (live records only).
	OpenWAL func() (io.ReadCloser, error)

	// WriteSnapshot streams the current rows + watermark in the snapshot
	// encoding — the /snapshot catch-up payload.
	WriteSnapshot func(w io.Writer) error

	HeartbeatEvery time.Duration // stream heartbeat cadence; 0 = 1s
	FollowerBuffer int           // per-subscriber line buffer; 0 = 256; overflow drops the subscriber
	Logger         *obs.Logger   // nil = silent
}

// pub is one published record: the seq lets subscribers dedupe the overlap
// between history replay and the live feed.
type pub struct {
	seq  uint64
	line []byte
}

// Hub fans the primary's durable observation stream out to followers. The
// primary calls Publish under its state lock after each WAL append; slow
// followers are dropped (their channel closed) rather than allowed to apply
// backpressure to the observe path — a dropped follower reconnects from its
// watermark and loses nothing.
type Hub struct {
	cfg HubConfig

	mu   sync.Mutex
	subs map[int]chan pub // guarded by mu
	next int              // guarded by mu; subscriber id counter
}

// NewHub builds a hub; see HubConfig for the wiring contract.
func NewHub(cfg HubConfig) *Hub {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.FollowerBuffer <= 0 {
		cfg.FollowerBuffer = 256
	}
	return &Hub{cfg: cfg, subs: make(map[int]chan pub)}
}

// Publish ships one durable observation to every connected follower. It never
// blocks: a subscriber whose buffer is full is disconnected on the spot.
// Called under the primary's state lock, so encoding stays out of any fast
// path other than observe itself (one marshal per observation).
func (h *Hub) Publish(seq uint64, li feature.Labeled) {
	line, err := persist.EncodeWALRecord(seq, li)
	if err != nil {
		h.cfg.Logger.Warn("replication publish encode failed", "seq", seq, "err", err)
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, ch := range h.subs {
		select {
		case ch <- pub{seq: seq, line: line}:
		default:
			// The follower is slower than the observe rate and its buffer is
			// gone; cut it loose. It reconnects from its applied watermark.
			close(ch)
			delete(h.subs, id)
			replFollowerDrops.Inc()
			h.cfg.Logger.Warn("follower dropped: replication buffer overflow", "subscriber", id)
		}
	}
}

// subscribe registers a live-feed channel; the returned cancel is idempotent
// against the overflow drop in Publish (both paths delete under mu).
func (h *Hub) subscribe() (int, chan pub, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id := h.next
	h.next++
	ch := make(chan pub, h.cfg.FollowerBuffer)
	h.subs[id] = ch
	return id, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}

// Subscribers reports the connected follower count (tests and ops).
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Mount registers the replication endpoints on mux.
func (h *Hub) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/replicate", h.handleReplicate)
	mux.HandleFunc("/snapshot", h.handleSnapshot)
}

// handleReplicate streams WAL records with seq > from as chunked newline
// JSON: a handshake heartbeat (so the follower learns the epoch and the
// watermark immediately), then history from the on-disk log, then the live
// feed interleaved with periodic heartbeats. The subscription is taken
// BEFORE history replay so no record falls between the log and the feed; the
// overlap is deduped by seq.
func (h *Hub) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	from := uint64(0)
	if v := q.Get("from"); v != "" {
		f, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
		from = f
	}
	w.Header().Set(EpochHeader, h.cfg.Epoch)
	// Epoch fencing: a follower resuming a stream from a previous primary
	// life must re-anchor on a snapshot, not splice two histories together.
	if e := q.Get("epoch"); e != "" && e != h.cfg.Epoch {
		replEpochFences.Inc()
		http.Error(w, fmt.Sprintf("epoch %s is not current (%s): catch up from /snapshot", e, h.cfg.Epoch), http.StatusConflict)
		return
	}
	// Compaction fencing: history at or below the base is no longer in the
	// log; 410 tells the follower the tail is lost, not merely interrupted.
	if base := h.cfg.Base(); from < base {
		http.Error(w, fmt.Sprintf("wal starts after seq %d: catch up from /snapshot", base), http.StatusGone)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")

	_, ch, cancel := h.subscribe()
	defer cancel()

	hb, err := encodeHeartbeat(h.cfg.Seq(), h.cfg.Epoch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(hb); err != nil {
		return
	}
	fl.Flush()

	last, ok := h.streamHistory(w, from)
	if !ok {
		return
	}
	if last < from {
		last = from
	}
	fl.Flush()

	tick := time.NewTicker(h.cfg.HeartbeatEvery)
	defer tick.Stop()
	done := r.Context().Done()
	for {
		select {
		case <-done:
			return
		case p, open := <-ch:
			if !open {
				return // dropped by Publish: the follower reconnects
			}
			if p.seq <= last {
				continue // already sent from history
			}
			if _, err := w.Write(p.line); err != nil {
				return
			}
			last = p.seq
			fl.Flush()
		case <-tick.C:
			hb, err := encodeHeartbeat(h.cfg.Seq(), h.cfg.Epoch)
			if err != nil {
				return
			}
			if _, err := w.Write(hb); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// streamHistory replays the on-disk log from the cursor into the response,
// re-encoding through the same canonical encoder that wrote the file, so the
// bytes on the wire match the bytes on disk. Returns the last streamed seq
// and whether the live loop should proceed: a write failure or a gap right
// at the cursor (the log was compacted between the base check and the open —
// the follower must re-anchor) both abort the stream.
func (h *Hub) streamHistory(w io.Writer, from uint64) (uint64, bool) {
	if h.cfg.OpenWAL == nil {
		return from, true
	}
	rc, err := h.cfg.OpenWAL()
	if err != nil {
		h.cfg.Logger.Warn("replication history open failed", "err", err)
		return from, false
	}
	if rc == nil {
		return from, true
	}
	defer rc.Close() //rkvet:ignore dropperr read-side close; nothing to recover
	want := from
	res, err := persist.ReplayWALFrom(rc, from, func(seq uint64, li feature.Labeled) error {
		if want != 0 && seq != want+1 {
			return fmt.Errorf("replica: wal history gap: have %d, next record is %d", want, seq)
		}
		want = seq
		line, eerr := persist.EncodeWALRecord(seq, li)
		if eerr != nil {
			return eerr
		}
		_, werr := w.Write(line)
		return werr
	})
	if err != nil {
		h.cfg.Logger.Warn("replication history stream aborted", "err", err)
		return res.LastSeq, false
	}
	// A torn tail in the primary's own log is the primary's recovery
	// problem, not the follower's: stream what is intact and go live.
	return res.LastSeq, true
}

// handleSnapshot streams the primary's current rows + watermark in the
// snapshot encoding — the catch-up path for followers whose WAL tail is gone.
func (h *Hub) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set(EpochHeader, h.cfg.Epoch)
	w.Header().Set(SeqHeader, strconv.FormatUint(h.cfg.Seq(), 10))
	w.Header().Set("Content-Type", "application/json")
	if err := h.cfg.WriteSnapshot(w); err != nil {
		h.cfg.Logger.Warn("snapshot stream failed", "err", err)
	}
}
