package replica

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/persist"
)

// readStreamLine reads one newline-framed line from a replication stream.
func readStreamLine(t *testing.T, br *bufio.Reader) []byte {
	t.Helper()
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return line
}

// isHeartbeat decodes a stream line as the heartbeat envelope.
func isHeartbeat(t *testing.T, line []byte) (heartbeat, bool) {
	t.Helper()
	var hb heartbeat
	if err := json.Unmarshal(line, &hb); err != nil {
		t.Fatalf("stream line is not JSON: %v (%q)", err, line)
	}
	return hb, hb.HB
}

func TestHubStreamsHistoryThenLive(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	rows := testRows(3, 8, p.schema)
	p.warm(rows[:5])

	req, err := http.NewRequest(http.MethodGet, p.URL()+"/replicate?from=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/replicate: %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	epoch := resp.Header.Get(EpochHeader)
	if epoch == "" {
		t.Fatal("stream carries no epoch header")
	}

	br := bufio.NewReader(resp.Body)
	// Handshake heartbeat first: epoch + current watermark, before any record.
	hb, ok := isHeartbeat(t, readStreamLine(t, br))
	if !ok {
		t.Fatal("stream did not open with a heartbeat")
	}
	if hb.Epoch != epoch || hb.Seq != 5 {
		t.Fatalf("handshake = %+v, want epoch %s seq 5", hb, epoch)
	}
	// Then history: seqs 1..5 in order, CRC-valid, byte-compatible with the
	// on-disk framing.
	for want := uint64(1); want <= 5; want++ {
		line := readStreamLine(t, br)
		seq, li, derr := persist.DecodeWALRecord(line)
		if derr != nil {
			t.Fatalf("history record %d: %v", want, derr)
		}
		if seq != want {
			t.Fatalf("history seq = %d, want %d", seq, want)
		}
		if li.Y != rows[want-1].Y {
			t.Fatalf("history record %d label = %d, want %d", want, li.Y, rows[want-1].Y)
		}
	}
	// Live: new observations arrive on the open stream.
	p.warm(rows[5:])
	deadline := time.Now().Add(5 * time.Second)
	for want := uint64(6); want <= 8; {
		if time.Now().After(deadline) {
			t.Fatal("live records never arrived")
		}
		line := readStreamLine(t, br)
		if _, isHB := isHeartbeat(t, line); isHB {
			continue
		}
		seq, _, derr := persist.DecodeWALRecord(line)
		if derr != nil {
			t.Fatal(derr)
		}
		if seq != want {
			t.Fatalf("live seq = %d, want %d", seq, want)
		}
		want++
	}
}

func TestHubResumesFromCursor(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	p.warm(testRows(4, 6, p.schema))

	resp, err := http.Get(p.URL() + "/replicate?from=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test response close
	br := bufio.NewReader(resp.Body)
	if _, ok := isHeartbeat(t, readStreamLine(t, br)); !ok {
		t.Fatal("no handshake heartbeat")
	}
	for _, want := range []uint64{5, 6} {
		seq, _, derr := persist.DecodeWALRecord(readStreamLine(t, br))
		if derr != nil {
			t.Fatal(derr)
		}
		if seq != want {
			t.Fatalf("resumed seq = %d, want %d", seq, want)
		}
	}
}

func TestHubFencesStaleEpoch(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	resp, err := http.Get(p.URL() + "/replicate?from=0&epoch=e999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch: %d, want 409", resp.StatusCode)
	}
}

func TestHubGoneBelowCompactionBase(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 4, compactWAL: true})
	p.warm(testRows(5, 10, p.schema))
	if base := p.srv.WALBase(); base == 0 {
		t.Fatal("compaction never advanced the wal base")
	}
	// A follower whose watermark predates the compacted base cannot resume.
	resp, err := http.Get(p.URL() + "/replicate?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("pre-base cursor: %d, want 410", resp.StatusCode)
	}
}

func TestHubSnapshotEndpoint(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	rows := testRows(6, 7, p.schema)
	p.warm(rows)

	resp, err := http.Get(p.URL() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot: %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get(SeqHeader) != "7" {
		t.Fatalf("%s = %q, want 7", SeqHeader, resp.Header.Get(SeqHeader))
	}
	if resp.Header.Get(EpochHeader) == "" {
		t.Fatal("snapshot carries no epoch")
	}
	schema, items, seq, err := persist.DecodeSnapshot(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || len(items) != 7 {
		t.Fatalf("snapshot seq=%d rows=%d, want 7/7", seq, len(items))
	}
	if schema.NumFeatures() != p.schema.NumFeatures() {
		t.Fatalf("snapshot schema arity %d, want %d", schema.NumFeatures(), p.schema.NumFeatures())
	}
}

func TestHubDropsSlowFollower(t *testing.T) {
	var seq uint64
	hub := NewHub(HubConfig{
		Epoch:          "e1",
		Seq:            func() uint64 { return seq },
		Base:           func() uint64 { return 0 },
		FollowerBuffer: 2,
	})
	_, ch, cancel := hub.subscribe()
	defer cancel()
	rows := testRows(7, 4, testSchema(t))
	// A subscriber that never drains overflows after the buffer fills; the
	// hub must cut it loose rather than block the observe path.
	for i, li := range rows {
		seq = uint64(i + 1)
		hub.Publish(seq, li)
	}
	if n := hub.Subscribers(); n != 0 {
		t.Fatalf("slow follower still subscribed (%d)", n)
	}
	// The channel was closed after the buffered records.
	drained := 0
	for range ch {
		drained++
	}
	if drained != 2 {
		t.Fatalf("drained %d buffered records, want 2", drained)
	}
}

func TestHubRejectsNonGet(t *testing.T) {
	p := newTestPrimary(t, t.TempDir(), primaryOpts{snapshotEvery: 100})
	for _, path := range []string{"/replicate", "/snapshot"} {
		resp, err := http.Post(p.URL()+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //rkvet:ignore dropperr test response close
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: %d, want 405", path, resp.StatusCode)
		}
	}
}
