package replica

import (
	"github.com/xai-db/relativekeys/internal/obs"
)

// Replication observability (DESIGN.md §14). The counters live here so every
// follower path increments exactly one registered series; the lag gauges
// (rk_replica_lag_entries, rk_replica_lag_seconds) are GaugeFuncs registered
// by cmd/cceserver in follower mode, because they read one specific server's
// state.
var (
	replReconnects = obs.NewCounter("rk_replica_reconnects_total",
		"Replication stream re-establishments by the follower (any cause: cut, primary restart, drop).")
	replSnapshotCatchups = obs.NewCounter("rk_replica_snapshot_catchups_total",
		"Follower re-anchors from /snapshot after a lost WAL tail (epoch fence or compaction).")
	replFollowerDrops = obs.NewCounter("rk_replica_follower_drops_total",
		"Followers disconnected by the hub because their stream buffer overflowed.")
	replEpochFences = obs.NewCounter("rk_replica_epoch_fences_total",
		"Replication streams refused because the follower's epoch is from a previous primary life.")
)
