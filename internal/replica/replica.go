// Package replica implements WAL-shipping replication for the CCE service
// (DESIGN.md §14): a primary hub streams durable observation records over
// /replicate in the on-disk WAL framing (newline JSON + CRC32), and a
// follower tails the stream, applies rows into its own context through the
// incremental path, and serves stale-bounded /explain reads. The follower
// survives everything the chaos suite throws at it — mid-record stream cuts,
// flaky dials, primary restarts, its own crashes — by reconnecting with the
// shared backoff policy, fencing streams on the primary's epoch, and falling
// back to snapshot catch-up when the WAL tail is gone.
package replica

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/xai-db/relativekeys/internal/persist"
)

// Protocol headers. EpochHeader carries the primary's boot identity on every
// /replicate and /snapshot response, so a follower can fence state from a
// previous primary life. SeqHeader carries the primary's durable watermark on
// snapshot responses.
const (
	EpochHeader = "X-RK-Epoch"
	SeqHeader   = "X-RK-Seq"
)

// heartbeat is the non-record stream line: the primary's current durable
// watermark plus its epoch, sent at connect (the handshake) and periodically
// so a caught-up follower can keep proving its freshness while no
// observations arrive. Record lines have no "hb" field, so the receiver can
// pick the envelope apart before CRC-validating records.
type heartbeat struct {
	HB    bool   `json:"hb"`
	Seq   uint64 `json:"seq"`
	Epoch string `json:"epoch"`
}

// encodeHeartbeat renders one heartbeat line.
func encodeHeartbeat(seq uint64, epoch string) ([]byte, error) {
	b, err := json.Marshal(heartbeat{HB: true, Seq: seq, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// epochFileName persists the primary's boot counter in its state dir; the
// follower persists the last primary epoch it installed under the same name.
const epochFileName = "epoch"

// NextEpoch mints the primary's boot identity: a counter in the state dir,
// atomically bumped every start. Any restart therefore changes the epoch,
// which is what lets followers detect that the WAL they were tailing may
// have a different history (a torn tail dropped on recovery) and re-anchor
// on a snapshot instead of silently diverging.
func NextEpoch(stateDir string) (string, error) {
	path := filepath.Join(stateDir, epochFileName)
	var n uint64
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
		if perr != nil {
			return "", fmt.Errorf("replica: epoch file %s: %w", path, perr)
		}
		n = v
	case os.IsNotExist(err):
		// First boot of this state dir.
	default:
		return "", err
	}
	n++
	err = persist.WriteFileAtomic(path, func(w io.Writer) error {
		_, werr := fmt.Fprintf(w, "%d\n", n)
		return werr
	})
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("e%d", n), nil
}

// LoadEpoch reads the epoch recorded in a state dir; "" on first boot.
func LoadEpoch(stateDir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(stateDir, epochFileName))
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	s := strings.TrimSpace(string(b))
	if s == "" {
		return "", nil
	}
	return s, nil
}

// SaveEpoch atomically records epoch in a state dir — the follower's fencing
// watermark, written after every epoch-changing snapshot install so a
// restarted follower knows which primary life its snapshot mirrors.
func SaveEpoch(stateDir, epoch string) error {
	return persist.WriteFileAtomic(filepath.Join(stateDir, epochFileName), func(w io.Writer) error {
		_, err := io.WriteString(w, epoch+"\n")
		return err
	})
}
