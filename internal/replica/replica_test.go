package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/backoff"
	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/service"
)

// ---- shared fixtures -------------------------------------------------------

func testSchema(t *testing.T) *feature.Schema {
	t.Helper()
	return feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
		{Name: "Area", Values: []string{"Urban", "Rural"}},
	}, []string{"Denied", "Approved"})
}

// testRows generates a deterministic labeled stream for a schema: the same
// seed always yields the same rows, so primary and follower histories can be
// compared byte for byte.
func testRows(seed int64, n int, s *feature.Schema) []feature.Labeled {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]feature.Labeled, 0, n)
	for i := 0; i < n; i++ {
		x := make(feature.Instance, len(s.Attrs))
		for j, a := range s.Attrs {
			x[j] = feature.Value(rng.Intn(len(a.Values)))
		}
		rows = append(rows, feature.Labeled{X: x, Y: feature.Label(rng.Intn(len(s.Labels)))})
	}
	return rows
}

func valuesOf(s *feature.Schema, x feature.Instance) map[string]string {
	m := make(map[string]string, len(s.Attrs))
	for i, a := range s.Attrs {
		m[a.Name] = a.Values[x[i]]
	}
	return m
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// fastBackoff keeps chaos loops tight: real sleeps, but bounded at 10ms.
func fastBackoff() backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond}
}

// ---- primary harness -------------------------------------------------------

// testPrimary is a restartable primary: server + hub behind one listener whose
// address survives restarts, so a follower pointed at URL() experiences a real
// process restart (connections die, epoch bumps) when stop/start is called.
type testPrimary struct {
	t      *testing.T
	dir    string
	addr   string
	schema *feature.Schema

	srv   *service.Server
	hub   *Hub
	hsrv  *http.Server
	alive bool
}

type primaryOpts struct {
	snapshotEvery int
	compactWAL    bool
}

func newTestPrimary(t *testing.T, dir string, opts primaryOpts) *testPrimary {
	t.Helper()
	p := &testPrimary{t: t, dir: dir, schema: testSchema(t)}
	p.start(opts)
	t.Cleanup(p.stopIfAlive)
	return p
}

// start boots a primary life: a fresh epoch, a fresh server recovered from the
// state dir, and a listener on the (stable) address. Mirrors cmd/cceserver
// wiring: the hub reads the server through closures, and is mounted on the
// root mux outside the service middleware.
func (p *testPrimary) start(opts primaryOpts) {
	p.t.Helper()
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		p.t.Fatal(err)
	}
	epoch, err := NextEpoch(p.dir)
	if err != nil {
		p.t.Fatal(err)
	}
	var srv *service.Server
	hub := NewHub(HubConfig{
		Epoch: epoch,
		Seq:   func() uint64 { return srv.Seq() },
		Base:  func() uint64 { return srv.WALBase() },
		OpenWAL: func() (io.ReadCloser, error) {
			path := srv.WALPath()
			if path == "" {
				return nil, nil
			}
			f, oerr := os.Open(path)
			if errors.Is(oerr, fs.ErrNotExist) {
				return nil, nil
			}
			return f, oerr
		},
		WriteSnapshot:  func(w io.Writer) error { return srv.WriteSnapshotTo(w) },
		HeartbeatEvery: 10 * time.Millisecond,
	})
	srv, err = service.NewServer(service.Config{
		Schema:        p.schema,
		Alpha:         1.0,
		StateDir:      p.dir,
		SnapshotEvery: opts.snapshotEvery,
		CompactWAL:    opts.compactWAL,
		Epoch:         epoch,
		OnReplicate:   hub.Publish,
	})
	if err != nil {
		p.t.Fatal(err)
	}
	addr := p.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	// After a restart the previous listener has just closed; the kernel can
	// take a moment to hand the port back even with SO_REUSEADDR.
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 200 {
			p.t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.addr = ln.Addr().String()

	mux := http.NewServeMux()
	hub.Mount(mux)
	mux.Handle("/", srv.Handler())
	hsrv := &http.Server{Handler: mux}
	go hsrv.Serve(ln) //rkvet:ignore dropperr Serve always returns ErrServerClosed on shutdown
	p.srv, p.hub, p.hsrv, p.alive = srv, hub, hsrv, true
}

func (p *testPrimary) URL() string { return "http://" + p.addr }

// stop kills the primary: listener and every open replication stream die, the
// server closes cleanly (final snapshot + WAL sync).
func (p *testPrimary) stop() {
	p.t.Helper()
	if err := p.hsrv.Close(); err != nil {
		p.t.Fatalf("primary http close: %v", err)
	}
	if err := p.srv.Close(); err != nil {
		p.t.Fatalf("primary close: %v", err)
	}
	p.alive = false
}

func (p *testPrimary) stopIfAlive() {
	if p.alive {
		p.stop()
	}
}

// restart is a full primary crash/recover cycle: epoch bumps, state recovers
// from disk, the address stays put.
func (p *testPrimary) restart(opts primaryOpts) {
	p.t.Helper()
	p.stop()
	p.start(opts)
}

func (p *testPrimary) warm(rows []feature.Labeled) {
	p.t.Helper()
	if _, err := p.srv.Warm(rows); err != nil {
		p.t.Fatal(err)
	}
}

// ---- follower harness ------------------------------------------------------

// testFollower is a crash-restartable follower: a follower-mode server plus
// the tailer goroutine, both anchored on one state dir.
type testFollower struct {
	t   *testing.T
	dir string

	srv    *service.Server
	fol    *Follower
	cancel context.CancelFunc
	done   chan error
}

func startFollower(t *testing.T, dir, primaryURL string, client *http.Client) *testFollower {
	t.Helper()
	srv, err := service.NewServer(service.Config{
		Schema:        testSchema(t),
		Alpha:         1.0,
		Follower:      true,
		StateDir:      dir,
		SnapshotEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fol, err := NewFollower(Config{
		PrimaryURL: primaryURL,
		HTTP:       client,
		Backoff:    fastBackoff(),
		StateDir:   dir,
	}, srv)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- fol.Run(ctx) }()
	f := &testFollower{t: t, dir: dir, srv: srv, fol: fol, cancel: cancel, done: done}
	t.Cleanup(f.stopIfRunning)
	return f
}

// stop cancels the tail loop and waits it out. The server stays usable for
// assertions; crash/restart tests just start a new follower on the same dir.
func (f *testFollower) stop() {
	f.t.Helper()
	f.cancel()
	select {
	case err := <-f.done:
		if err != nil && !errors.Is(err, context.Canceled) {
			f.t.Fatalf("follower run: %v", err)
		}
	case <-time.After(5 * time.Second):
		f.t.Fatal("follower did not stop")
	}
	f.done = nil
}

func (f *testFollower) stopIfRunning() {
	if f.done != nil {
		f.stop()
	}
}

// serveFollower exposes the follower server over HTTP for probe requests and
// returns its base URL.
func serveFollower(t *testing.T, f *testFollower) string {
	t.Helper()
	ts := httptest.NewServer(f.srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// caughtUpTo waits until the follower has applied through seq.
func (f *testFollower) caughtUpTo(seq uint64, d time.Duration) {
	f.t.Helper()
	waitFor(f.t, d, fmt.Sprintf("follower to reach seq %d (at %d)", seq, f.srv.Seq()),
		func() bool { return f.srv.Seq() >= seq })
}

// ---- differential probes ---------------------------------------------------

// explainOn posts an explain and returns the decoded response and status.
func explainOn(t *testing.T, baseURL string, schema *feature.Schema, li feature.Labeled, maxStaleMS int64) (service.ExplainResponse, int) {
	t.Helper()
	body, err := json.Marshal(service.ExplainRequest{
		Values:     valuesOf(schema, li.X),
		Prediction: schema.Labels[li.Y],
		// Probe below the server default: random test streams rarely admit
		// α=1.0 keys, and a probe that always answers ErrNoKey would make
		// the differential comparison vacuous.
		Alpha:          0.6,
		MaxStalenessMS: maxStaleMS,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("explain %s: %v", baseURL, err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test response close
	var er service.ExplainResponse
	if resp.StatusCode == http.StatusOK {
		if derr := json.NewDecoder(resp.Body).Decode(&er); derr != nil {
			t.Fatal(derr)
		}
	}
	return er, resp.StatusCode
}

// normalizedExplanation strips the replica-only fields and serializes what
// remains, so primary and follower answers can be compared byte for byte.
func normalizedExplanation(t *testing.T, er service.ExplainResponse) []byte {
	t.Helper()
	er.ReplicaSeq = nil
	er.StalenessMS = nil
	b, err := json.Marshal(er)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// assertConverged asserts the follower serves byte-identical explanations to
// the primary for every probe — the replication correctness contract.
func assertConverged(t *testing.T, primaryURL, followerURL string, schema *feature.Schema, probes []feature.Labeled) {
	t.Helper()
	for i, li := range probes {
		pr, pst := explainOn(t, primaryURL, schema, li, 0)
		fr, fst := explainOn(t, followerURL, schema, li, 0)
		if pst != fst {
			t.Fatalf("probe %d: primary answered %d, follower %d", i, pst, fst)
		}
		if pst != http.StatusOK {
			continue
		}
		pb, fb := normalizedExplanation(t, pr), normalizedExplanation(t, fr)
		if !bytes.Equal(pb, fb) {
			t.Fatalf("probe %d diverged:\n  primary:  %s\n  follower: %s", i, pb, fb)
		}
	}
}

// ---- epoch unit tests ------------------------------------------------------

func TestNextEpochMonotonic(t *testing.T) {
	dir := t.TempDir()
	e1, err := NextEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NextEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != "e1" || e2 != "e2" {
		t.Fatalf("epochs = %q, %q, want e1, e2", e1, e2)
	}
}

func TestEpochSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if e, err := LoadEpoch(dir); err != nil || e != "" {
		t.Fatalf("first boot epoch = %q, %v, want empty", e, err)
	}
	if err := SaveEpoch(dir, "e7"); err != nil {
		t.Fatal(err)
	}
	e, err := LoadEpoch(dir)
	if err != nil {
		t.Fatal(err)
	}
	if e != "e7" {
		t.Fatalf("loaded epoch = %q, want e7", e)
	}
}
