package sat

import "fmt"

// This file provides the cardinality encodings the formal explainer needs:
// exactly-one constraints over a feature's one-hot value variables, and
// sequential-counter at-most-k constraints over tree-vote indicators.

// AddExactlyOne enforces that precisely one of the literals is true.
func (s *Solver) AddExactlyOne(lits ...Lit) error {
	if len(lits) == 0 {
		return fmt.Errorf("sat: exactly-one over zero literals is unsatisfiable")
	}
	if err := s.AddClause(lits...); err != nil { // at least one
		return err
	}
	return s.AddAtMostOne(lits...)
}

// AddAtMostOne enforces that at most one of the literals is true (pairwise
// encoding; fine for the domain sizes we use).
func (s *Solver) AddAtMostOne(lits ...Lit) error {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			if err := s.AddClause(lits[i].Neg(), lits[j].Neg()); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddAtMostK enforces Σ lits ≤ k using Sinz's sequential counter encoding,
// introducing O(n·k) auxiliary variables.
func (s *Solver) AddAtMostK(lits []Lit, k int) error {
	n := len(lits)
	if k < 0 {
		return fmt.Errorf("sat: negative cardinality bound %d", k)
	}
	if k >= n {
		return nil // trivially satisfied
	}
	if k == 0 {
		for _, l := range lits {
			if err := s.AddClause(l.Neg()); err != nil {
				return err
			}
		}
		return nil
	}
	// r[i][j] ⇔ at least j+1 of lits[0..i] are true (j < k).
	r := make([][]Lit, n)
	for i := range r {
		r[i] = make([]Lit, k)
		for j := range r[i] {
			r[i][j] = Lit(s.NewVar())
		}
	}
	// Base: r[0][0] ← lits[0]; r[0][j>0] is false.
	if err := s.AddClause(lits[0].Neg(), r[0][0]); err != nil {
		return err
	}
	for j := 1; j < k; j++ {
		if err := s.AddClause(r[0][j].Neg()); err != nil {
			return err
		}
	}
	for i := 1; i < n; i++ {
		// Carry: r[i][j] ← r[i-1][j].
		for j := 0; j < k; j++ {
			if err := s.AddClause(r[i-1][j].Neg(), r[i][j]); err != nil {
				return err
			}
		}
		// Increment: r[i][0] ← lits[i]; r[i][j] ← lits[i] ∧ r[i-1][j-1].
		if err := s.AddClause(lits[i].Neg(), r[i][0]); err != nil {
			return err
		}
		for j := 1; j < k; j++ {
			if err := s.AddClause(lits[i].Neg(), r[i-1][j-1].Neg(), r[i][j]); err != nil {
				return err
			}
		}
		// Overflow forbidden: lits[i] ∧ r[i-1][k-1] is a conflict.
		if err := s.AddClause(lits[i].Neg(), r[i-1][k-1].Neg()); err != nil {
			return err
		}
	}
	return nil
}

// AddAtLeastK enforces Σ lits ≥ k via at-most over the negations.
func (s *Solver) AddAtLeastK(lits []Lit, k int) error {
	if k <= 0 {
		return nil
	}
	if k > len(lits) {
		return fmt.Errorf("sat: at-least-%d over %d literals is unsatisfiable", k, len(lits))
	}
	neg := make([]Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	return s.AddAtMostK(neg, len(lits)-k)
}
