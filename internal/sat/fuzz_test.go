package sat

import "testing"

// FuzzSolver decodes arbitrary bytes into a small CNF and checks that the
// solver neither panics nor returns an invalid model, cross-checking
// satisfiable verdicts against the formula.
func FuzzSolver(f *testing.F) {
	f.Add([]byte{1, 2, 0, 255, 254, 0})
	f.Add([]byte{1, 0, 255, 0})
	f.Add([]byte{3, 4, 5, 0, 253, 252, 251, 0, 1, 254, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nVars = 6
		s := NewSolver()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		var cnf [][]Lit
		var cl []Lit
		for _, b := range data {
			if b == 0 {
				if len(cl) > 0 {
					cnf = append(cnf, cl)
					cl = nil
				}
				continue
			}
			v := int(b%nVars) + 1
			l := Lit(v)
			if b >= 128 {
				l = -l
			}
			cl = append(cl, l)
			if len(cl) >= 4 {
				cnf = append(cnf, cl)
				cl = nil
			}
		}
		if len(cl) > 0 {
			cnf = append(cnf, cl)
		}
		if len(cnf) > 64 {
			cnf = cnf[:64]
		}
		rootUnsat := false
		for _, c := range cnf {
			if err := s.AddClause(c...); err == ErrUnsatRoot {
				rootUnsat = true
				break
			} else if err != nil {
				t.Fatalf("AddClause: %v", err)
			}
		}
		model, sat := s.SolveModel()
		if rootUnsat && sat {
			t.Fatal("root-level UNSAT formula declared SAT")
		}
		if !sat {
			return
		}
		for _, c := range cnf {
			holds := false
			for _, l := range c {
				if (l > 0) == model[l.Var()-1] {
					holds = true
					break
				}
			}
			if !holds {
				t.Fatalf("model violates clause %v", c)
			}
		}
	})
}
