// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// with two-watched-literal propagation, first-UIP clause learning, VSIDS-like
// activities, geometric restarts, and incremental solving under assumptions.
// It is the reasoning substrate of the formal explainer (the paper's Xreason
// baseline uses a MaxSAT solver; deletion-based prime implicants only need
// repeated SAT calls, which assumptions make cheap).
package sat

import (
	"errors"
	"fmt"
)

// Lit is a literal: +v for variable v, -v for its negation, with v ≥ 1.
type Lit int32

// Var returns the 1-based variable of the literal.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// internal literal encoding: variable v (0-based) → 2v positive, 2v+1 negative.
type ilit uint32

func toILit(l Lit) ilit {
	if l > 0 {
		return ilit(2 * (uint32(l) - 1))
	}
	return ilit(2*(uint32(-l)-1) + 1)
}

func (il ilit) neg() ilit  { return il ^ 1 }
func (il ilit) vidx() int  { return int(il >> 1) }
func (il ilit) sign() bool { return il&1 == 1 } // true for negated

const (
	valUndef int8 = -1
	valFalse int8 = 0
	valTrue  int8 = 1
)

type clause struct {
	lits    []ilit
	learned bool
	act     float64
}

type watcher struct {
	cref    int  // index into clauses
	blocker ilit // cached literal whose truth satisfies the clause
}

// Solver is a CDCL SAT solver. The zero value is not usable; call NewSolver.
type Solver struct {
	clauses []*clause
	watches [][]watcher // indexed by ilit

	assign  []int8 // per variable
	level   []int  // decision level per variable
	reason  []int  // clause index forcing the variable, or -1
	trail   []ilit
	trailLo []int // trail index at the start of each decision level

	activity []float64
	varInc   float64

	seen     []bool
	unsatEOF bool // true once an empty clause was added

	propagations int64
	conflicts    int64
	decisions    int64

	// lastModel snapshots the satisfying assignment of the most recent
	// successful solve, so Value works after the trail is unwound.
	lastModel []bool
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{varInc: 1}
}

// NewVar allocates a fresh variable, returning its 1-based index.
func (s *Solver) NewVar() int {
	s.assign = append(s.assign, valUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	return len(s.assign)
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assign) }

// ErrUnsatRoot is returned by AddClause when the clause set is trivially
// unsatisfiable at the root level.
var ErrUnsatRoot = errors.New("sat: formula is unsatisfiable at the root level")

// AddClause adds a clause over existing variables. Duplicate literals are
// merged; tautologies are dropped. Must be called at decision level 0.
func (s *Solver) AddClause(lits ...Lit) error {
	if len(s.trailLo) != 0 {
		return fmt.Errorf("sat: AddClause requires decision level 0")
	}
	// Normalize: sort-free dedup via map semantics on small clauses.
	norm := make([]ilit, 0, len(lits))
outer:
	for _, l := range lits {
		if l == 0 || l.Var() > s.NumVars() {
			return fmt.Errorf("sat: literal %d references unknown variable", l)
		}
		il := toILit(l)
		switch s.assign[il.vidx()] {
		case valTrue:
			if !il.sign() {
				return nil // already satisfied at root
			}
			continue // root-false literal, drop
		case valFalse:
			if il.sign() {
				return nil
			}
			continue
		}
		for _, e := range norm {
			if e == il {
				continue outer
			}
			if e == il.neg() {
				return nil // tautology
			}
		}
		norm = append(norm, il)
	}
	switch len(norm) {
	case 0:
		s.unsatEOF = true
		return ErrUnsatRoot
	case 1:
		if !s.enqueue(norm[0], -1) {
			s.unsatEOF = true
			return ErrUnsatRoot
		}
		if s.propagate() >= 0 {
			s.unsatEOF = true
			return ErrUnsatRoot
		}
		return nil
	}
	s.attach(&clause{lits: norm})
	return nil
}

func (s *Solver) attach(c *clause) int {
	cref := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0].neg()] = append(s.watches[c.lits[0].neg()], watcher{cref, c.lits[1]})
	s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{cref, c.lits[0]})
	return cref
}

// value returns the current truth value of an internal literal.
func (s *Solver) value(il ilit) int8 {
	v := s.assign[il.vidx()]
	if v == valUndef {
		return valUndef
	}
	if il.sign() {
		return 1 - v
	}
	return v
}

// enqueue assigns a literal true with the given reason; returns false on an
// immediate conflict with the current assignment.
func (s *Solver) enqueue(il ilit, reason int) bool {
	switch s.value(il) {
	case valTrue:
		return true
	case valFalse:
		return false
	}
	v := il.vidx()
	if il.sign() {
		s.assign[v] = valFalse
	} else {
		s.assign[v] = valTrue
	}
	s.level[v] = len(s.trailLo)
	s.reason[v] = reason
	s.trail = append(s.trail, il)
	return true
}

// propagate runs unit propagation; it returns the index of a conflicting
// clause or -1.
func (s *Solver) propagate() int {
	qhead := 0
	// Propagation must consider everything enqueued since the last call;
	// track a persistent head instead: simplest correct approach is to scan
	// from the first unpropagated trail entry. We store it implicitly: all
	// entries are propagated in this loop before returning.
	for qhead < len(s.trail) {
		il := s.trail[qhead]
		qhead++
		s.propagations++
		ws := s.watches[il]
		kept := ws[:0]
		var conflict = -1
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == valTrue {
				kept = append(kept, w)
				continue
			}
			c := s.clauses[w.cref]
			// Ensure the false literal is at position 1.
			falseLit := il.neg()
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == valTrue {
				kept = append(kept, watcher{w.cref, first})
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != valFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].neg()] = append(s.watches[c.lits[1].neg()], watcher{w.cref, first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.cref, first})
			if !s.enqueue(first, w.cref) {
				// Conflict: keep remaining watchers and report.
				kept = append(kept, ws[wi+1:]...)
				conflict = w.cref
				break
			}
		}
		s.watches[il] = kept
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

func (s *Solver) decisionLevel() int { return len(s.trailLo) }

func (s *Solver) newDecisionLevel() { s.trailLo = append(s.trailLo, len(s.trail)) }

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	lo := s.trailLo[lvl]
	for i := len(s.trail) - 1; i >= lo; i-- {
		v := s.trail[i].vidx()
		s.assign[v] = valUndef
		s.reason[v] = -1
	}
	s.trail = s.trail[:lo]
	s.trailLo = s.trailLo[:lvl]
}

// analyze performs first-UIP conflict analysis, returning the learned clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(conflict int) ([]ilit, int) {
	learned := []ilit{0} // placeholder for the asserting literal
	counter := 0
	var p ilit
	pSet := false
	idx := len(s.trail) - 1
	cref := conflict

	for {
		c := s.clauses[cref]
		for _, q := range c.lits {
			if pSet && q == p {
				continue
			}
			v := q.vidx()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Find the next seen literal on the trail.
		for !s.seen[s.trail[idx].vidx()] {
			idx--
		}
		p = s.trail[idx]
		pSet = true
		idx--
		v := p.vidx()
		s.seen[v] = false
		counter--
		if counter == 0 {
			learned[0] = p.neg()
			break
		}
		cref = s.reason[v]
	}
	// Clear seen flags for the learned clause and compute backjump level.
	back := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].vidx()] > s.level[learned[maxI].vidx()] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		back = s.level[learned[1].vidx()]
	}
	for _, q := range learned {
		s.seen[q.vidx()] = false
	}
	return learned, back
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// pickBranch returns an unassigned variable with maximal activity, or -1.
func (s *Solver) pickBranch() int {
	best, bestAct := -1, -1.0
	for v, a := range s.assign {
		if a == valUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// Solve determines satisfiability of the clause set.
func (s *Solver) Solve() bool { return s.SolveAssume() }

// SolveAssume solves under the given assumption literals; the solver state is
// reusable afterwards (assumptions are retracted).
func (s *Solver) SolveAssume(assumps ...Lit) bool {
	defer s.cancelUntil(0)
	if s.unsatEOF {
		return false
	}
	if s.propagate() >= 0 {
		s.unsatEOF = true
		return false
	}
	conflictBudget := 100
	for {
		// (Re)establish assumptions after any restart.
		if !s.pushAssumptions(assumps) {
			return false
		}
		res := s.search(conflictBudget, len(assumps))
		switch res {
		case 1:
			s.lastModel = s.model()
			return true
		case 0:
			return false
		}
		// Budget exhausted: restart with a larger budget.
		s.cancelUntil(0)
		conflictBudget = int(float64(conflictBudget) * 1.5)
	}
}

// pushAssumptions enqueues assumptions as decision levels; returns false on
// conflict with the formula.
func (s *Solver) pushAssumptions(assumps []Lit) bool {
	for _, a := range assumps {
		il := toILit(a)
		switch s.value(il) {
		case valTrue:
			continue
		case valFalse:
			return false
		}
		s.newDecisionLevel()
		s.enqueue(il, -1)
		if s.propagate() >= 0 {
			return false
		}
	}
	return true
}

// search runs CDCL until SAT (1), UNSAT (0), or conflict budget exhaustion
// (-1). Conflicts below the assumption levels mean UNSAT under assumptions.
func (s *Solver) search(budget, nAssume int) int {
	conflicts := 0
	for {
		cref := s.propagate()
		if cref >= 0 {
			s.conflicts++
			conflicts++
			if s.decisionLevel() <= nAssume {
				return 0 // conflict at or below the assumption levels
			}
			learned, back := s.analyze(cref)
			if back < nAssume {
				back = nAssume
			}
			s.cancelUntil(back)
			if len(learned) == 1 {
				if s.decisionLevel() > 0 {
					// Unit learned clause must be asserted at level 0;
					// backtrack fully and re-establish assumptions by
					// reporting budget exhaustion (restart path).
					s.cancelUntil(0)
					if !s.enqueue(learned[0], -1) || s.propagate() >= 0 {
						s.unsatEOF = true
						return 0
					}
					return -1
				}
				if !s.enqueue(learned[0], -1) {
					return 0
				}
			} else {
				cl := &clause{lits: learned, learned: true}
				cref := s.attach(cl)
				if !s.enqueue(learned[0], cref) {
					return 0
				}
			}
			s.varInc *= 1.05
			if conflicts >= budget {
				return -1
			}
			continue
		}
		v := s.pickBranch()
		if v < 0 {
			return 1 // all variables assigned: SAT
		}
		s.decisions++
		s.newDecisionLevel()
		// Phase heuristic: try false first (common for one-hot encodings).
		s.enqueue(ilit(2*uint32(v)+1), -1)
	}
}

// Value returns the model value of variable v (1-based) after a satisfiable
// Solve; variables created after that solve report false.
func (s *Solver) Value(v int) bool {
	if v < 1 || v > len(s.lastModel) {
		return false
	}
	return s.lastModel[v-1]
}

// Model snapshots the current assignment as a slice indexed by variable-1.
// Valid only immediately inside a SAT callback; after SolveAssume returns the
// trail is unwound, so Model is primarily useful through SolveModel.
func (s *Solver) model() []bool {
	m := make([]bool, s.NumVars())
	for v := range m {
		m[v] = s.assign[v] == valTrue
	}
	return m
}

// SolveModel is SolveAssume that also returns the satisfying assignment.
func (s *Solver) SolveModel(assumps ...Lit) ([]bool, bool) {
	if s.unsatEOF {
		return nil, false
	}
	if s.propagate() >= 0 {
		s.unsatEOF = true
		return nil, false
	}
	conflictBudget := 100
	for {
		if !s.pushAssumptions(assumps) {
			s.cancelUntil(0)
			return nil, false
		}
		res := s.search(conflictBudget, len(assumps))
		if res == 1 {
			m := s.model()
			s.lastModel = m
			s.cancelUntil(0)
			return m, true
		}
		if res == 0 {
			s.cancelUntil(0)
			return nil, false
		}
		s.cancelUntil(0)
		conflictBudget = int(float64(conflictBudget) * 1.5)
	}
}

// Stats reports basic search statistics.
func (s *Solver) Stats() (propagations, conflicts, decisions int64) {
	return s.propagations, s.conflicts, s.decisions
}
