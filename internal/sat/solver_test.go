package sat

import (
	"math/rand"
	"testing"
)

// bruteForce decides satisfiability of a CNF over n variables by enumeration.
func bruteForce(n int, cnf [][]Lit) bool {
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				v := l.Var() - 1
				val := mask&(1<<v) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func solverFor(t testing.TB, n int, cnf [][]Lit) (*Solver, bool) {
	t.Helper()
	s := NewSolver()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for _, cl := range cnf {
		if err := s.AddClause(cl...); err != nil {
			if err == ErrUnsatRoot {
				return s, false
			}
			t.Fatal(err)
		}
	}
	return s, true
}

func TestTrivialCases(t *testing.T) {
	s := NewSolver()
	if !s.Solve() {
		t.Fatal("empty formula must be SAT")
	}
	v := s.NewVar()
	if err := s.AddClause(Lit(v)); err != nil {
		t.Fatal(err)
	}
	if !s.Solve() || !s.Value(v) {
		t.Fatal("unit clause must force the variable true")
	}
	if err := s.AddClause(Lit(-v)); err != ErrUnsatRoot {
		t.Fatalf("want ErrUnsatRoot, got %v", err)
	}
	if s.Solve() {
		t.Fatal("contradictory units must be UNSAT")
	}
}

func TestSmallFormulas(t *testing.T) {
	// (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (x1 ∨ ¬x2) ∧ (¬x1 ∨ ¬x2) — classic UNSAT.
	cnf := [][]Lit{{1, 2}, {-1, 2}, {1, -2}, {-1, -2}}
	s, ok := solverFor(t, 2, cnf)
	if ok && s.Solve() {
		t.Fatal("2-var contradiction must be UNSAT")
	}
	// XOR chain, SAT.
	cnf = [][]Lit{{1, 2}, {-1, -2}, {2, 3}, {-2, -3}}
	s, ok = solverFor(t, 3, cnf)
	if !ok || !s.Solve() {
		t.Fatal("XOR chain must be SAT")
	}
	if s.Value(2) == s.Value(1) || s.Value(3) == s.Value(2) {
		t.Fatal("model violates XOR constraints")
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	// 4 pigeons into 3 holes: var p*3+h+1 means pigeon p in hole h.
	s := NewSolver()
	for i := 0; i < 12; i++ {
		s.NewVar()
	}
	for p := 0; p < 4; p++ {
		cl := []Lit{Lit(p*3 + 1), Lit(p*3 + 2), Lit(p*3 + 3)}
		if err := s.AddClause(cl...); err != nil {
			t.Fatal(err)
		}
	}
	for h := 1; h <= 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				if err := s.AddClause(Lit(-(p1*3 + h)), Lit(-(p2*3 + h))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if s.Solve() {
		t.Fatal("pigeonhole 4→3 must be UNSAT")
	}
}

// Differential test: CDCL vs brute force on random 3-SAT near the phase
// transition.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(10)
		m := int(4.2 * float64(n))
		cnf := make([][]Lit, m)
		for i := range cnf {
			cl := make([]Lit, 3)
			for j := range cl {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					cl[j] = Lit(v)
				} else {
					cl[j] = Lit(-v)
				}
			}
			cnf[i] = cl
		}
		want := bruteForce(n, cnf)
		s, ok := solverFor(t, n, cnf)
		got := ok && s.Solve()
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v (n=%d m=%d cnf=%v)", trial, got, want, n, m, cnf)
		}
		if got {
			// Verify the model actually satisfies the formula.
			model, sat := s.SolveModel()
			if !sat {
				t.Fatalf("trial %d: SolveModel disagrees with Solve", trial)
			}
			for _, cl := range cnf {
				holds := false
				for _, l := range cl {
					if (l > 0) == model[l.Var()-1] {
						holds = true
						break
					}
				}
				if !holds {
					t.Fatalf("trial %d: model does not satisfy %v", trial, cl)
				}
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	// x1 → x2, x2 → x3.
	s, _ := solverFor(t, 3, [][]Lit{{-1, 2}, {-2, 3}})
	if !s.SolveAssume(1) {
		t.Fatal("assuming x1 must be SAT")
	}
	if s.SolveAssume(1, -3) {
		t.Fatal("x1 ∧ ¬x3 contradicts the chain")
	}
	// Solver must remain reusable after UNSAT-under-assumptions.
	if !s.SolveAssume(-1) {
		t.Fatal("assuming ¬x1 must be SAT")
	}
	if !s.Solve() {
		t.Fatal("formula itself is SAT")
	}
}

// Differential test for assumptions against brute force with forced literals.
func TestAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(6)
		m := 3 * n
		cnf := make([][]Lit, m)
		for i := range cnf {
			cl := make([]Lit, 1+rng.Intn(3))
			for j := range cl {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					cl[j] = Lit(v)
				} else {
					cl[j] = Lit(-v)
				}
			}
			cnf[i] = cl
		}
		var assumps []Lit
		for v := 1; v <= n; v++ {
			if rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					assumps = append(assumps, Lit(v))
				} else {
					assumps = append(assumps, Lit(-v))
				}
			}
		}
		full := append(append([][]Lit{}, cnf...), nil)
		full = full[:len(cnf)]
		for _, a := range assumps {
			full = append(full, []Lit{a})
		}
		want := bruteForce(n, full)
		s, ok := solverFor(t, n, cnf)
		got := ok && s.SolveAssume(assumps...)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v", trial, got, want)
		}
	}
}

func TestAddClauseValidation(t *testing.T) {
	s := NewSolver()
	s.NewVar()
	if err := s.AddClause(0); err == nil {
		t.Fatal("zero literal accepted")
	}
	if err := s.AddClause(5); err == nil {
		t.Fatal("unknown variable accepted")
	}
	// Tautology is dropped silently.
	if err := s.AddClause(1, -1); err != nil {
		t.Fatal(err)
	}
	if !s.Solve() {
		t.Fatal("tautology-only formula must be SAT")
	}
}

func TestExactlyOne(t *testing.T) {
	s := NewSolver()
	lits := make([]Lit, 5)
	for i := range lits {
		lits[i] = Lit(s.NewVar())
	}
	if err := s.AddExactlyOne(lits...); err != nil {
		t.Fatal(err)
	}
	model, sat := s.SolveModel()
	if !sat {
		t.Fatal("exactly-one must be SAT")
	}
	count := 0
	for _, m := range model[:5] {
		if m {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("model sets %d literals, want 1", count)
	}
	// Forcing two true is UNSAT.
	if s.SolveAssume(lits[0], lits[1]) {
		t.Fatal("two true literals must violate exactly-one")
	}
	// Forcing all false is UNSAT.
	neg := make([]Lit, 5)
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	if s.SolveAssume(neg...) {
		t.Fatal("all-false must violate exactly-one")
	}
	if err := s.AddExactlyOne(); err == nil {
		t.Fatal("empty exactly-one accepted")
	}
}

// Property: AtMostK/AtLeastK agree with brute-force counting.
func TestCardinalityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(5)
		k := rng.Intn(n + 1)
		atLeast := rng.Intn(2) == 0

		s := NewSolver()
		lits := make([]Lit, n)
		for i := range lits {
			lits[i] = Lit(s.NewVar())
		}
		var err error
		if atLeast {
			err = s.AddAtLeastK(lits, k)
		} else {
			err = s.AddAtMostK(lits, k)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Check every assignment of the original n variables via assumptions.
		for mask := 0; mask < 1<<n; mask++ {
			assumps := make([]Lit, n)
			count := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					assumps[i] = lits[i]
					count++
				} else {
					assumps[i] = lits[i].Neg()
				}
			}
			want := count <= k
			if atLeast {
				want = count >= k
			}
			if got := s.SolveAssume(assumps...); got != want {
				t.Fatalf("trial %d (atLeast=%v k=%d n=%d): mask %b → %v, want %v",
					trial, atLeast, k, n, mask, got, want)
			}
		}
	}
}

func TestCardinalityValidation(t *testing.T) {
	s := NewSolver()
	lits := []Lit{Lit(s.NewVar()), Lit(s.NewVar())}
	if err := s.AddAtMostK(lits, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	if err := s.AddAtLeastK(lits, 3); err == nil {
		t.Fatal("k > n accepted for at-least")
	}
}

func TestStats(t *testing.T) {
	s, _ := solverFor(t, 3, [][]Lit{{1, 2, 3}, {-1, -2}, {-1, -3}, {-2, -3}})
	s.Solve()
	p, _, _ := s.Stats()
	if p == 0 {
		t.Fatal("expected some propagations")
	}
}
