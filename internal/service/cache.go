package service

import (
	"container/list"
	"sync"
	"time"
)

// The explanation cache (DESIGN.md §15). Heavy interactive traffic is
// dominated by duplicate explains against the same context version, so the
// server memoizes fully-rendered explain outcomes under the canonical
// (version, solver config, alpha, instance) key. Invalidation is free:
// the context's mutation stamp is part of the key, so any observe, retention
// eviction, or replicated apply shifts new traffic to fresh keys and the old
// entries age out of the LRU. Memory is bounded twice — by entry count and by
// an approximate byte budget — whichever cap is hit first evicts from the
// cold end.
//
// Degraded results are second-class citizens: an entry solved under an
// expired deadline is valid but possibly larger than the greedy key, so it is
// stored with the budget it was solved under and served only to requests
// whose own budget is no longer. A request with a longer (or unbounded)
// deadline treats it as a miss, and a fresh non-degraded result then upgrades
// the entry in place. A degraded result never overwrites a non-degraded one.

// cachedExplain is one memoized explain outcome: everything needed to render
// a byte-identical response body without touching the solver or the context.
type cachedExplain struct {
	resp     ExplainResponse // replica fields unset; filled per request
	noKey    bool            // the solve proved no α-conformant key exists (409)
	degraded bool
	// budget is the effective solve budget the entry was produced under —
	// min(request deadline, elapsed solve time), so a solve cut short by a
	// client disconnect is not credited with the full deadline. Only
	// meaningful when degraded (0 = unbounded, which is never cached
	// degraded).
	budget time.Duration
}

// servableFor reports whether the entry may answer a request with the given
// solve budget (0 = unbounded): non-degraded entries always, degraded entries
// only when the request's budget is at most the one the entry degraded under
// — a longer deadline could have produced a smaller key, so serving the
// degraded entry would make the cache observable.
func (e *cachedExplain) servableFor(budget time.Duration) bool {
	if !e.degraded {
		return true
	}
	return budget > 0 && budget <= e.budget
}

// sizeBytes approximates the entry's memory footprint for the byte cap:
// the key, the rendered rule and feature names, plus a fixed overhead for
// the struct, list element, and map header.
func cacheEntrySize(key string, e *cachedExplain) int {
	n := len(key) + len(e.resp.Rule) + 96
	for _, f := range e.resp.Features {
		n += len(f) + 16
	}
	return n
}

// explainCache is a mutex-guarded LRU over canonical cache keys. It is its
// own lock domain, deliberately independent of Server.mu: hits must not queue
// behind a solver holding the state lock.
type explainCache struct {
	mu         sync.Mutex
	maxEntries int   // guarded by mu; > 0
	maxBytes   int64 // guarded by mu; > 0
	bytes      int64 // guarded by mu; approximate occupancy

	ll      *list.List               // guarded by mu; front = hottest
	entries map[string]*list.Element // guarded by mu
}

// cacheItem is the list payload.
type cacheItem struct {
	key  string
	e    *cachedExplain
	size int
}

const (
	defaultCacheEntries = 8192
	defaultCacheBytes   = 32 << 20
)

// newExplainCache builds a cache; non-positive caps take the defaults.
func newExplainCache(maxEntries int, maxBytes int64) *explainCache {
	if maxEntries <= 0 {
		maxEntries = defaultCacheEntries
	}
	if maxBytes <= 0 {
		maxBytes = defaultCacheBytes
	}
	return &explainCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		entries:    make(map[string]*list.Element),
	}
}

// get returns the entry under key when present AND servable for the request
// budget, promoting it to the hot end. A present-but-unservable entry (a
// degraded result facing a longer deadline) reports (nil, false): the caller
// re-solves and put upgrades the entry.
func (c *explainCache) get(key string, budget time.Duration) (*cachedExplain, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	item := el.Value.(*cacheItem)
	if !item.e.servableFor(budget) {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return item.e, true
}

// put inserts or upgrades the entry under key, then evicts past the caps.
// A degraded result never replaces an existing non-degraded entry; among
// degraded entries the one solved under the longer budget wins (it is
// servable to strictly more requests).
func (c *explainCache) put(key string, e *cachedExplain) {
	size := cacheEntrySize(key, e)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		item := el.Value.(*cacheItem)
		if e.degraded && (!item.e.degraded || e.budget <= item.e.budget) {
			c.ll.MoveToFront(el)
			return
		}
		c.bytes += int64(size - item.size)
		item.e, item.size = e, size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheItem{key: key, e: e, size: size})
		c.entries[key] = el
		c.bytes += int64(size)
	}
	for (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.ll.Len() > 1 {
		c.evictOldestLocked()
	}
}

// evictOldestLocked drops the cold-end entry. Callers hold c.mu.
func (c *explainCache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	item := el.Value.(*cacheItem)
	c.ll.Remove(el)
	delete(c.entries, item.key)
	c.bytes -= int64(item.size)
	cacheEvictions.Inc()
}

// stats reports occupancy for /stats.
func (c *explainCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
