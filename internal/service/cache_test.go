package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/feature"
)

// explainRaw posts one /explain and returns the exact body bytes plus the
// X-RK-Cache source header — the unit of comparison for the differential
// suite, which asserts byte identity, not field equality.
func explainRaw(t *testing.T, url string, req ExplainRequest) (int, []byte, string) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/explain", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test teardown
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-RK-Cache")
}

// TestExplainCacheDifferential is the cache's correctness contract: for every
// solver configuration the service ships, the cached path must return bodies
// byte-identical to a cache-bypassed solve at the same context version — on a
// miss, on a hit, after a version bump, and under retention eviction. The
// cache may only ever change the X-RK-Cache header.
func TestExplainCacheDifferential(t *testing.T) {
	schema := robustSchema(t)
	configs := []struct {
		name string
		cfg  Config
	}{
		{"eager", Config{Schema: schema, Alpha: 1.0, Solve: SolveFunc(core.SRKAnytime), SolverTag: "eager"}},
		{"lazy_p1", Config{Schema: schema, Alpha: 1.0, Parallelism: 1}},
		{"lazy_p2", Config{Schema: schema, Alpha: 1.0, Parallelism: 2}},
		{"lazy_p4", Config{Schema: schema, Alpha: 1.0, Parallelism: 4}},
		{"lazy_p2_retain4", Config{Schema: schema, Alpha: 1.0, Parallelism: 2, Retain: 4}},
	}
	requests := []ExplainRequest{
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"},
		{Values: map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}, Prediction: "Approved"},
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied", Alpha: 0.85},
		// An instance the context contradicts: the exact no-key verdict (409)
		// must cache and serve identically too.
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Approved"},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := NewServer(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.Warm(robustSeed()); err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)

			check := func(req ExplainRequest, wantFirst string) {
				t.Helper()
				bypass := req
				bypass.NoCache = true
				refCode, refBody, refSrc := explainRaw(t, ts.URL, bypass)
				if refSrc != "bypass" {
					t.Fatalf("no_cache source = %q", refSrc)
				}
				code, body, src := explainRaw(t, ts.URL, req)
				if src != wantFirst {
					t.Fatalf("first cached request source = %q, want %q", src, wantFirst)
				}
				if code != refCode || !bytes.Equal(body, refBody) {
					t.Fatalf("cached(%s) differs from bypass:\n%d %s\nvs\n%d %s", src, code, body, refCode, refBody)
				}
				code, body, src = explainRaw(t, ts.URL, req)
				if src != "hit" {
					t.Fatalf("repeat source = %q, want hit", src)
				}
				if code != refCode || !bytes.Equal(body, refBody) {
					t.Fatalf("hit differs from bypass:\n%d %s\nvs\n%d %s", code, body, refCode, refBody)
				}
			}
			for _, req := range requests {
				check(req, "miss")
			}
			// A version bump (new observation; under retain=4 it also evicts
			// the oldest row) must shift every key: the same requests re-solve
			// and re-agree with a fresh bypass at the new version.
			obs, err := json.Marshal(ObserveRequest{
				Values:     map[string]string{"Income": "1-2K", "Credit": "good", "Area": "Rural"},
				Prediction: "Approved",
			})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(ts.URL+"/observe", "application/json", bytes.NewReader(obs))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close() //rkvet:ignore dropperr test teardown
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("observe: %s", resp.Status)
			}
			for _, req := range requests {
				check(req, "miss")
			}
		})
	}
}

// TestCacheDegradedServeRule pins the degraded-entry contract end to end: a
// result degraded under budget B is served from cache only to requests whose
// budget is ≤ B; a longer-deadline (or unbounded) request re-solves, and a
// non-degraded result then upgrades the entry for everyone.
func TestCacheDegradedServeRule(t *testing.T) {
	schema := robustSchema(t)
	solve := func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
		if _, bounded := ctx.Deadline(); bounded {
			// Run until the deadline genuinely fires, then yield a valid but
			// larger key — the honest anytime-degradation shape. (An instant
			// degraded return would model a cut-short solve, which the cache
			// deliberately credits with only its elapsed time.)
			<-ctx.Done()
			return core.Key{0, 1}, true, nil
		}
		return core.Key{0}, false, nil
	}
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, Solve: solve, SolverTag: "fake"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req := ExplainRequest{
		Values:     map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"},
		Prediction: "Denied",
		DeadlineMS: 200,
	}
	decode := func(body []byte) ExplainResponse {
		var r ExplainResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Degraded solve under 200ms lands in the cache with that budget.
	_, body, src := explainRaw(t, ts.URL, req)
	if src != "miss" || !decode(body).Degraded {
		t.Fatalf("first request: source %q, body %s", src, body)
	}
	// A shorter budget is served the degraded entry.
	shorter := req
	shorter.DeadlineMS = 100
	_, body, src = explainRaw(t, ts.URL, shorter)
	if src != "hit" || !decode(body).Degraded {
		t.Fatalf("shorter budget: source %q, body %s", src, body)
	}
	// A longer budget must NOT be served it: it re-solves (still degraded
	// here, since the fake solver degrades any bounded request) and the entry
	// upgrades to the longer budget.
	longer := req
	longer.DeadlineMS = 500
	_, body, src = explainRaw(t, ts.URL, longer)
	if src != "miss" || !decode(body).Degraded {
		t.Fatalf("longer budget: source %q, body %s", src, body)
	}
	_, _, src = explainRaw(t, ts.URL, shorter)
	if src != "hit" {
		t.Fatalf("shorter budget after upgrade: source %q", src)
	}
	// An unbounded request re-solves non-degraded and upgrades the entry;
	// bounded requests now hit the non-degraded result.
	unbounded := req
	unbounded.DeadlineMS = 0
	_, body, src = explainRaw(t, ts.URL, unbounded)
	if src != "miss" || decode(body).Degraded {
		t.Fatalf("unbounded: source %q, body %s", src, body)
	}
	_, body, src = explainRaw(t, ts.URL, shorter)
	if src != "hit" || decode(body).Degraded {
		t.Fatalf("post-upgrade hit: source %q, body %s", src, body)
	}
}

// TestCacheDisconnectDegradedNotOverCredited pins the effective-budget stamp:
// a solve degraded because the client disconnected (request context canceled
// long before the deadline) ran under a tiny effective budget, and the cached
// entry must not be credited with the request's nominal deadline — a later
// request carrying the same deadline re-solves instead of inheriting the
// cut-short result.
func TestCacheDisconnectDegradedNotOverCredited(t *testing.T) {
	schema := robustSchema(t)
	solve := func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
		select {
		case <-ctx.Done():
			// Cut short: the anytime solver's cheap degraded exit.
			return core.Key{0, 1}, true, nil
		default:
			return core.Key{0}, false, nil
		}
	}
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, Solve: solve, SolverTag: "fake"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	li, err := srv.decode(map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, "Denied")
	if err != nil {
		t.Fatal(err)
	}

	// The disconnect: a request with a generous 30s budget whose context is
	// already canceled when the solve starts.
	gone, cancel := context.WithCancel(context.Background())
	cancel()
	budget := 30 * time.Second
	srv.mu.RLock()
	out, _ := srv.explainLocked(gone, li, 1.0, budget, false)
	srv.mu.RUnlock()
	if out.err != nil || !out.e.resp.Degraded {
		t.Fatalf("disconnected solve: err=%v degraded=%v, want a degraded result", out.err, out.e != nil && out.e.resp.Degraded)
	}

	// A live request with the SAME budget must not be served that entry: the
	// full 30s could produce the exact key.
	srv.mu.RLock()
	out, src := srv.explainLocked(context.Background(), li, 1.0, budget, false)
	srv.mu.RUnlock()
	if out.err != nil {
		t.Fatal(out.err)
	}
	if src == "hit" || out.e.resp.Degraded {
		t.Fatalf("full-budget request after a disconnect-degraded solve: source=%q degraded=%v, want a fresh exact solve", src, out.e.resp.Degraded)
	}
}

// TestCacheStatsCounters asserts the /stats cache block moves with traffic.
func TestCacheStatsCounters(t *testing.T) {
	srv, ts, client := testServer(t, 0)
	observeAll(t, client)
	req := ExplainRequest{
		Values:     map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"},
		Prediction: "Denied",
	}
	explainRaw(t, ts.URL, req)
	explainRaw(t, ts.URL, req)
	bypass := req
	bypass.NoCache = true
	explainRaw(t, ts.URL, bypass)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test teardown
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.CacheActive {
		t.Fatal("cache not active")
	}
	if stats.CacheHits != 1 || stats.CacheMisses != 1 || stats.CacheBypassed != 1 {
		t.Fatalf("stats = hits %d misses %d bypassed %d, want 1/1/1", stats.CacheHits, stats.CacheMisses, stats.CacheBypassed)
	}
	if stats.CacheEntries != 1 || stats.CacheBytes <= 0 {
		t.Fatalf("occupancy = %d entries / %d bytes", stats.CacheEntries, stats.CacheBytes)
	}
	_ = srv
}

// TestCacheOff asserts CacheOff disables the whole plane: every request is a
// bypass and /stats reports the cache inactive.
func TestCacheOff(t *testing.T) {
	schema := robustSchema(t)
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, CacheOff: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	req := ExplainRequest{
		Values:     map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"},
		Prediction: "Denied",
	}
	for i := 0; i < 2; i++ {
		if _, _, src := explainRaw(t, ts.URL, req); src != "bypass" {
			t.Fatalf("request %d source = %q with the cache off", i, src)
		}
	}
}

// TestExplainCacheLRU exercises the bounds directly: the entry cap and the
// byte cap both evict from the cold end, and a get promotes.
func TestExplainCacheLRU(t *testing.T) {
	c := newExplainCache(2, 1<<20)
	entry := func(rule string) *cachedExplain {
		return &cachedExplain{resp: ExplainResponse{Rule: rule}}
	}
	c.put("a", entry("A"))
	c.put("b", entry("B"))
	if _, ok := c.get("a", 0); !ok { // promote a; b is now coldest
		t.Fatal("a missing")
	}
	c.put("c", entry("C"))
	if _, ok := c.get("b", 0); ok {
		t.Fatal("b survived past the entry cap")
	}
	if _, ok := c.get("a", 0); !ok {
		t.Fatal("promoted entry evicted")
	}
	entries, bytes := c.stats()
	if entries != 2 || bytes <= 0 {
		t.Fatalf("stats = %d entries / %d bytes", entries, bytes)
	}

	// Byte cap: entries are ~100+ bytes each, so a 150-byte budget holds one.
	tiny := newExplainCache(100, 150)
	tiny.put("a", entry("a long rendered rule body that dominates the budget"))
	tiny.put("b", entry("another long rendered rule body that dominates it too"))
	if _, ok := tiny.get("a", 0); ok {
		t.Fatal("byte cap did not evict")
	}
	if _, ok := tiny.get("b", 0); !ok {
		t.Fatal("newest entry evicted instead of oldest")
	}
}

// TestCacheDegradedEntryRules covers the put-side degraded lattice: degraded
// never overwrites non-degraded, and among degraded the longer budget wins.
func TestCacheDegradedEntryRules(t *testing.T) {
	c := newExplainCache(8, 1<<20)
	full := &cachedExplain{resp: ExplainResponse{Rule: "full"}}
	deg1 := &cachedExplain{resp: ExplainResponse{Rule: "deg1", Degraded: true}, degraded: true, budget: 100 * time.Millisecond}
	deg2 := &cachedExplain{resp: ExplainResponse{Rule: "deg2", Degraded: true}, degraded: true, budget: 200 * time.Millisecond}

	c.put("k", deg1)
	if e, ok := c.get("k", 50*time.Millisecond); !ok || e.resp.Rule != "deg1" {
		t.Fatalf("degraded entry not served to shorter budget: %v %v", e, ok)
	}
	if _, ok := c.get("k", 150*time.Millisecond); ok {
		t.Fatal("degraded entry served past its budget")
	}
	if _, ok := c.get("k", 0); ok {
		t.Fatal("degraded entry served to an unbounded request")
	}
	c.put("k", deg2) // longer budget wins
	if e, ok := c.get("k", 150*time.Millisecond); !ok || e.resp.Rule != "deg2" {
		t.Fatalf("longer-budget degraded did not win: %v %v", e, ok)
	}
	c.put("k", deg1) // shorter budget must not downgrade
	if e, ok := c.get("k", 150*time.Millisecond); !ok || e.resp.Rule != "deg2" {
		t.Fatalf("shorter-budget degraded downgraded the entry: %v %v", e, ok)
	}
	c.put("k", full)
	if e, ok := c.get("k", 0); !ok || e.resp.Rule != "full" {
		t.Fatalf("non-degraded upgrade missing: %v %v", e, ok)
	}
	c.put("k", deg2)
	if e, ok := c.get("k", 0); !ok || e.resp.Rule != "full" {
		t.Fatalf("degraded overwrote non-degraded: %v %v", e, ok)
	}
}
