package service

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/xai-db/relativekeys/internal/feature"
)

// The canonical explanation-cache key (DESIGN.md §15). Two requests share a
// cache entry exactly when they would provoke byte-identical solves: same
// context content (Version — the core.Context mutation stamp), same solver
// configuration fingerprint, same conformity bound, and the same labeled
// instance. The encoding must therefore be injective — distinct tuples map to
// distinct byte strings — and that property is load-bearing enough to carry
// its own fuzz target (FuzzCacheKey): a collision would silently serve one
// instance's explanation as another's.
//
// Framing: every variable-length field is length-prefixed and every scalar is
// uvarint- or fixed-width-encoded, so no field can bleed into the next. Alpha
// travels as its IEEE-754 bit pattern — the cache must distinguish bounds
// that differ in the last ulp, because the solver does.

// CacheKey is the decoded form of one explanation-cache key.
type CacheKey struct {
	Version uint64           // context mutation stamp at solve time
	Config  string           // solver configuration fingerprint (e.g. "lazy/p=4")
	Alpha   float64          // conformity bound the solve ran under
	Y       feature.Label    // predicted label
	X       feature.Instance // encoded attribute values
}

// cacheKeyMagic versions the encoding itself, so a future layout change can
// never be confused with today's bytes.
const cacheKeyMagic = byte(1)

// EncodeCacheKey renders the tuple in the canonical framing. The result is
// used as a map key, so it returns string, not []byte.
func EncodeCacheKey(k CacheKey) string {
	buf := make([]byte, 0, 2+binary.MaxVarintLen64*3+len(k.Config)+8+len(k.X)*binary.MaxVarintLen32)
	buf = append(buf, cacheKeyMagic)
	buf = binary.AppendUvarint(buf, k.Version)
	buf = binary.AppendUvarint(buf, uint64(len(k.Config)))
	buf = append(buf, k.Config...)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(k.Alpha))
	buf = binary.AppendVarint(buf, int64(k.Y))
	buf = binary.AppendUvarint(buf, uint64(len(k.X)))
	for _, v := range k.X {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return string(buf)
}

// minUvarint and minVarint read like binary.Uvarint/Varint but additionally
// reject non-minimal encodings (e.g. 0xf0 0x00 for 0x70), which Go's readers
// accept. Without the check two distinct byte strings could decode to the
// same key, breaking the canonical-form property the fuzz target holds:
// every decodable string re-encodes to itself.
func minUvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 || n != len(binary.AppendUvarint(nil, v)) {
		return 0, -1
	}
	return v, n
}

func minVarint(b []byte) (int64, int) {
	v, n := binary.Varint(b)
	if n <= 0 || n != len(binary.AppendVarint(nil, v)) {
		return 0, -1
	}
	return v, n
}

// DecodeCacheKey parses a canonical key, rejecting malformed, non-minimal, or
// trailing-garbage input. Decode(Encode(k)) == k for every key, which is what
// makes the encoding injective: two tuples sharing a byte string would both
// have to decode from it.
func DecodeCacheKey(s string) (CacheKey, error) {
	b := []byte(s)
	var k CacheKey
	if len(b) == 0 || b[0] != cacheKeyMagic {
		return k, fmt.Errorf("service: cache key: bad magic")
	}
	b = b[1:]
	version, n := minUvarint(b)
	if n <= 0 {
		return k, fmt.Errorf("service: cache key: truncated version")
	}
	b = b[n:]
	clen, n := minUvarint(b)
	if n <= 0 || uint64(len(b)-n) < clen {
		return k, fmt.Errorf("service: cache key: truncated config")
	}
	b = b[n:]
	k.Config = string(b[:clen])
	b = b[clen:]
	if len(b) < 8 {
		return k, fmt.Errorf("service: cache key: truncated alpha")
	}
	k.Alpha = math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
	b = b[8:]
	y, n := minVarint(b)
	if n <= 0 || y < math.MinInt32 || y > math.MaxInt32 {
		return k, fmt.Errorf("service: cache key: bad label")
	}
	b = b[n:]
	xlen, n := minUvarint(b)
	if n <= 0 {
		return k, fmt.Errorf("service: cache key: truncated instance length")
	}
	b = b[n:]
	x := make(feature.Instance, 0, xlen)
	for i := uint64(0); i < xlen; i++ {
		v, n := minVarint(b)
		if n <= 0 || v < math.MinInt32 || v > math.MaxInt32 {
			return k, fmt.Errorf("service: cache key: bad value at %d", i)
		}
		b = b[n:]
		x = append(x, feature.Value(v))
	}
	if len(b) != 0 {
		return k, fmt.Errorf("service: cache key: %d trailing bytes", len(b))
	}
	k.Version = version
	k.Y = feature.Label(y)
	if len(x) > 0 {
		k.X = x
	}
	return k, nil
}
