package service

import (
	"strings"
	"testing"

	"github.com/xai-db/relativekeys/internal/feature"
)

func cacheKeyFixtures() []CacheKey {
	return []CacheKey{
		{},
		{Version: 1, Config: "lazy/p=1", Alpha: 1.0, Y: 0, X: feature.Instance{0, 0, 0}},
		{Version: 1, Config: "lazy/p=1", Alpha: 1.0, Y: 1, X: feature.Instance{0, 0, 0}},
		{Version: 2, Config: "lazy/p=1", Alpha: 1.0, Y: 0, X: feature.Instance{0, 0, 0}},
		{Version: 1, Config: "lazy/p=4", Alpha: 1.0, Y: 0, X: feature.Instance{0, 0, 0}},
		{Version: 1, Config: "eager", Alpha: 1.0, Y: 0, X: feature.Instance{0, 0, 0}},
		{Version: 1, Config: "lazy/p=1", Alpha: 0.9, Y: 0, X: feature.Instance{0, 0, 0}},
		// One ulp below 0.9: the bound the solver distinguishes, the key must too.
		{Version: 1, Config: "lazy/p=1", Alpha: 0.8999999999999999, Y: 0, X: feature.Instance{0, 0, 0}},
		{Version: 1, Config: "lazy/p=1", Alpha: 1.0, Y: 0, X: feature.Instance{0, 0, 1}},
		{Version: 1, Config: "lazy/p=1", Alpha: 1.0, Y: 0, X: feature.Instance{0, 0}},
		{Version: 1, Config: "lazy/p=1", Alpha: 1.0, Y: 0, X: nil},
		{Version: 1 << 40, Config: strings.Repeat("c", 300), Alpha: -1, Y: 1<<31 - 1, X: feature.Instance{1<<31 - 1, 0}},
		// A config that embeds bytes resembling the framing itself.
		{Version: 7, Config: "\x01\x00\xff", Alpha: 0, Y: -1, X: feature.Instance{3}},
	}
}

func TestCacheKeyRoundTrip(t *testing.T) {
	for i, k := range cacheKeyFixtures() {
		s := EncodeCacheKey(k)
		got, err := DecodeCacheKey(s)
		if err != nil {
			t.Fatalf("fixture %d: decode: %v", i, err)
		}
		if got.Version != k.Version || got.Config != k.Config || got.Alpha != k.Alpha || got.Y != k.Y { //rkvet:ignore floateq bit-exact alpha round-trip is the property under test
			t.Fatalf("fixture %d: got %+v, want %+v", i, got, k)
		}
		if len(got.X) != len(k.X) {
			t.Fatalf("fixture %d: X = %v, want %v", i, got.X, k.X)
		}
		for j := range k.X {
			if got.X[j] != k.X[j] {
				t.Fatalf("fixture %d: X = %v, want %v", i, got.X, k.X)
			}
		}
		// Canonical: re-encoding the decoded key reproduces the bytes.
		if EncodeCacheKey(got) != s {
			t.Fatalf("fixture %d: re-encode differs", i)
		}
	}
}

// TestCacheKeyInjective asserts pairwise-distinct tuples produce pairwise-
// distinct encodings — the property that makes the cache safe: a collision
// would serve one instance's explanation as another's.
func TestCacheKeyInjective(t *testing.T) {
	seen := make(map[string]int)
	for i, k := range cacheKeyFixtures() {
		s := EncodeCacheKey(k)
		if j, dup := seen[s]; dup {
			t.Fatalf("fixtures %d and %d collide: %q", j, i, s)
		}
		seen[s] = i
	}
}

func TestCacheKeyMalformed(t *testing.T) {
	good := EncodeCacheKey(CacheKey{Version: 3, Config: "lazy/p=2", Alpha: 1, Y: 1, X: feature.Instance{1, 2, 3}})
	cases := map[string]string{
		"empty":            "",
		"bad magic":        "\x02" + good[1:],
		"truncated header": good[:1],
		"truncated config": good[:4],
		"truncated alpha":  good[:len(good)-12],
		"truncated values": good[:len(good)-1],
		"trailing bytes":   good + "x",
	}
	for name, s := range cases {
		if _, err := DecodeCacheKey(s); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzCacheKey drives the canonical-form property from the byte side:
// anything that decodes must re-encode to exactly the input bytes (so no two
// distinct byte strings decode to the same tuple), and the re-decode must
// agree with the first. Together with TestCacheKeyRoundTrip this pins the
// encoding as a bijection between valid tuples and valid byte strings.
func FuzzCacheKey(f *testing.F) {
	for _, k := range cacheKeyFixtures() {
		f.Add([]byte(EncodeCacheKey(k)))
	}
	f.Add([]byte{})
	f.Add([]byte{cacheKeyMagic})
	f.Add([]byte("\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := DecodeCacheKey(string(data))
		if err != nil {
			return
		}
		re := EncodeCacheKey(k)
		if re != string(data) {
			t.Fatalf("decode accepted non-canonical bytes %q (canonical %q)", data, re)
		}
		again, err := DecodeCacheKey(re)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if again.Version != k.Version || again.Config != k.Config || again.Y != k.Y {
			t.Fatalf("re-decode disagrees: %+v vs %+v", again, k)
		}
	})
}
