package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/cce"
	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/faultinject"
	"github.com/xai-db/relativekeys/internal/persist"
)

// postJSONErr is postJSON for goroutines: it returns the error instead of
// failing the test from off the main goroutine.
func postJSONErr(url string, body any) (*http.Response, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return http.Post(url, "application/json", bytes.NewReader(b))
}

// TestChaosConcurrentFaults drives a server whose solver, drift monitor, and
// observation log all fail on injected schedules, under concurrent load and
// (in CI) the race detector. It asserts the robustness contract, not exact
// outcomes: every response is from the documented status set, the process
// survives, and the rollback invariant holds — the context contains exactly
// the acknowledged observations, no matter which faults fired.
func TestChaosConcurrentFaults(t *testing.T) {
	schema := robustSchema(t)
	inj := faultinject.New(1337)
	mon, err := cce.NewDriftMonitor(schema, 1.0, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	walFile, err := os.OpenFile(filepath.Join(dir, walFileName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer walFile.Close() //rkvet:ignore dropperr test cleanup
	srv, err := NewServer(Config{
		Schema: schema,
		Alpha:  1.0,
		Monitor: &faultinject.FlakyObserver{
			Inner:    mon,
			Inj:      inj,
			FailProb: 0.2,
		},
		Solve: SolveFunc(faultinject.WrapSolve(core.SRKAnytime, inj, faultinject.SolveFaults{
			LatencyProb: 0.3,
			Latency:     20 * time.Millisecond,
			ErrProb:     0.1,
		})),
		DefaultDeadline: 5 * time.Millisecond,
		MaxInFlight:     4,
		StateDir:        dir,
		WAL: persist.NewWAL(&faultinject.FaultyWriteSyncer{
			Inner:         walFile,
			Inj:           inj,
			WriteFailProb: 0.15,
			SyncFailProb:  0.1,
		}),
		SnapshotEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	seeded := srv.ctx.Len()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	workers, iters := 8, 60
	if testing.Short() {
		workers, iters = 4, 20
	}
	allowed := map[string]map[int]bool{
		"/observe": {200: true, 400: true, 500: true, 503: true},
		"/explain": {200: true, 409: true, 429: true, 500: true, 503: true},
		"/stats":   {200: true},
	}
	var observeAcked atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rows := randomRows(int64(100+w), iters, schema)
			for i, li := range rows {
				var path string
				var resp *http.Response
				var err error
				switch i % 4 {
				case 0, 1:
					path = "/observe"
					body := ObserveRequest{Values: valuesOf(schema, li.X), Prediction: schema.Labels[li.Y]}
					if i%8 == 0 {
						body.Values["Income"] = "not-a-value" // deliberate 400
					}
					resp, err = postJSONErr(ts.URL+path, body)
				case 2:
					path = "/explain"
					resp, err = postJSONErr(ts.URL+path, ExplainRequest{
						Values: valuesOf(schema, li.X), Prediction: schema.Labels[li.Y],
					})
				default:
					path = "/stats"
					resp, err = http.Get(ts.URL + path)
				}
				if err != nil {
					errs <- err
					continue
				}
				if !allowed[path][resp.StatusCode] {
					errs <- fmt.Errorf("%s answered %d, outside the contract", path, resp.StatusCode)
				} else if path == "/observe" && resp.StatusCode == 200 {
					observeAcked.Add(1)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The rollback invariant under concurrent injected faults: every admitted
	// row was acknowledged, every failed observe (flaky monitor 500, faulty
	// WAL 503) was rolled back.
	if got, want := srv.ctx.Len(), seeded+int(observeAcked.Load()); got != want {
		t.Fatalf("context %d rows, want seed %d + %d acked", got, seeded, int(observeAcked.Load()))
	}
	if srv.Seq() != uint64(srv.ctx.Len()) {
		t.Fatalf("seq %d diverged from context size %d", srv.Seq(), srv.ctx.Len())
	}
	// The process is still healthy after the storm.
	stats, err := NewClient(ts.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ContextSize != srv.ctx.Len() {
		t.Fatalf("stats after chaos: %+v", stats)
	}
}

// TestChaosObserveRollbackConcurrent focuses the monitor-failure rollback
// path: many goroutines observing through a monitor that fails a third of
// the time must leave the context holding exactly the acknowledged rows,
// with slots recycled rather than leaked.
func TestChaosObserveRollbackConcurrent(t *testing.T) {
	schema := robustSchema(t)
	mon, err := cce.NewDriftMonitor(schema, 1.0, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Schema:  schema,
		Alpha:   1.0,
		Monitor: &faultinject.FlakyObserver{Inner: mon, Inj: faultinject.New(7), FailProb: 0.33},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	workers, iters := 8, 40
	if testing.Short() {
		workers, iters = 4, 15
	}
	var acked, failed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, li := range randomRows(int64(200+w), iters, schema) {
				resp, err := postJSONErr(ts.URL+"/observe", ObserveRequest{
					Values: valuesOf(schema, li.X), Prediction: schema.Labels[li.Y],
				})
				if err != nil {
					errs <- err
					continue
				}
				switch resp.StatusCode {
				case 200:
					acked.Add(1)
				case 500:
					failed.Add(1)
				default:
					errs <- fmt.Errorf("observe answered %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if failed.Load() == 0 {
		t.Fatal("flaky monitor never fired; the test exercised nothing")
	}
	if got := srv.ctx.Len(); got != int(acked.Load()) {
		t.Fatalf("context %d rows after concurrent rollbacks, want %d acked", got, acked.Load())
	}
	// Rolled-back slots must recycle: the physical index stays within one
	// transient slot of the live count.
	if slots := srv.ctx.NumSlots(); slots > int(acked.Load())+1 {
		t.Fatalf("NumSlots %d leaks rolled-back slots (acked %d)", slots, acked.Load())
	}
}
