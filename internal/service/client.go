package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/xai-db/relativekeys/internal/backoff"
)

// Client is a typed HTTP client for a CCE service. It retries transient
// failures — 429 (shed), 503 (draining, deadline floor, log hiccup), and
// transport errors such as a reset connection — with capped, jittered
// exponential backoff, honouring the server's Retry-After hint. Permanent
// failures (400, 409, 500) surface immediately.
type Client struct {
	BaseURL string
	HTTP    *http.Client

	// MaxRetries is how many times a transient failure is retried after the
	// first attempt. BaseDelay and MaxDelay bound the exponential backoff
	// (defaults 50ms and 2s).
	MaxRetries int
	BaseDelay  time.Duration
	MaxDelay   time.Duration

	// sleep and jitter are test seams; nil means time.Sleep and uniform
	// jitter over [d/2, d].
	sleep  func(time.Duration)
	jitter func(time.Duration) time.Duration
}

// NewClient targets a service at baseURL, using http.DefaultClient unless
// overridden, with 3 retries of transient failures.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient, MaxRetries: 3}
}

// Observe records one served inference in the remote context.
func (c *Client) Observe(values map[string]string, prediction string) error {
	var out map[string]int
	return c.post("/observe", ObserveRequest{Values: values, Prediction: prediction}, &out)
}

// Explain requests the relative key for an observed instance. alpha 0 means
// the server default.
func (c *Client) Explain(values map[string]string, prediction string, alpha float64) (*ExplainResponse, error) {
	var out ExplainResponse
	err := c.post("/explain", ExplainRequest{Values: values, Prediction: prediction, Alpha: alpha}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ExplainDeadline is Explain with a per-request solve deadline: the server
// answers within roughly the deadline, degrading to a larger-but-valid key
// when the greedy solve cannot finish in time.
func (c *Client) ExplainDeadline(values map[string]string, prediction string, alpha float64, deadline time.Duration) (*ExplainResponse, error) {
	var out ExplainResponse
	req := ExplainRequest{Values: values, Prediction: prediction, Alpha: alpha, DeadlineMS: deadline.Milliseconds()}
	if err := c.post("/explain", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ExplainStale is Explain with a staleness bound, for read replicas: a
// follower whose applied state is older than maxStaleness sheds the request
// (503 + Retry-After) instead of answering from it, and the client's retry
// gives the follower time to catch up. On a primary the bound is trivially
// met.
func (c *Client) ExplainStale(values map[string]string, prediction string, alpha float64, maxStaleness time.Duration) (*ExplainResponse, error) {
	var out ExplainResponse
	req := ExplainRequest{Values: values, Prediction: prediction, Alpha: alpha, MaxStalenessMS: maxStaleness.Milliseconds()}
	if err := c.post("/explain", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the service summary.
func (c *Client) Stats() (*StatsResponse, error) {
	var out StatsResponse
	err := c.do(func() (*http.Response, error) {
		return c.HTTP.Get(c.BaseURL + "/stats")
	}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.do(func() (*http.Response, error) {
		return c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	}, out)
}

// do runs one request with the retry policy. send must be re-issuable: each
// attempt builds a fresh request body.
func (c *Client) do(send func() (*http.Response, error), out any) error {
	for attempt := 0; ; attempt++ {
		resp, err := send()
		if err != nil {
			// Transport-level failure: connection refused, reset mid-response,
			// and friends. Retryable — the server rolls back half-applied
			// observes, so a retry cannot duplicate state it rejected.
			if attempt >= c.MaxRetries {
				return err
			}
			clientRetries.Inc()
			c.backoff(attempt, 0)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			err := json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close() //rkvet:ignore dropperr read-side body close; nothing to recover
			return err
		}
		retryAfter := parseRetryAfter(resp.Header)
		herr := httpError(resp)
		resp.Body.Close() //rkvet:ignore dropperr read-side body close; nothing to recover
		if !retryableStatus(resp.StatusCode) || attempt >= c.MaxRetries {
			return herr
		}
		clientRetries.Inc()
		c.backoff(attempt, retryAfter)
	}
}

// retryableStatus: only statuses the server uses for transient conditions.
// 400/409/500 are answers, not hiccups.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff sleeps for min(MaxDelay, BaseDelay·2^attempt) with jitter, never
// less than the server's Retry-After hint. The policy itself lives in
// internal/backoff so the replication follower reconnects with exactly the
// client's curve.
func (c *Client) backoff(attempt int, retryAfter time.Duration) {
	p := backoff.Policy{Base: c.BaseDelay, Max: c.MaxDelay, Jitter: c.jitter, Sleep: c.sleep}
	p.SleepFor(attempt, retryAfter)
}

// Policy exposes the client's retry policy (for callers that need the delay
// computation without a Client, e.g. tests asserting shed Retry-After floors).
func (c *Client) Policy() backoff.Policy {
	return backoff.Policy{Base: c.BaseDelay, Max: c.MaxDelay, Jitter: c.jitter, Sleep: c.sleep}
}

// parseRetryAfter reads the integer-seconds form of Retry-After; 0 when
// absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //rkvet:ignore dropperr best-effort read of the error body; the status line already carries the failure
	return fmt.Errorf("service: %s: %s", resp.Status, bytes.TrimSpace(msg))
}
