package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a typed HTTP client for a CCE service.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient targets a service at baseURL, using http.DefaultClient unless
// overridden.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// Observe records one served inference in the remote context.
func (c *Client) Observe(values map[string]string, prediction string) error {
	var out map[string]int
	return c.post("/observe", ObserveRequest{Values: values, Prediction: prediction}, &out)
}

// Explain requests the relative key for an observed instance. alpha 0 means
// the server default.
func (c *Client) Explain(values map[string]string, prediction string, alpha float64) (*ExplainResponse, error) {
	var out ExplainResponse
	err := c.post("/explain", ExplainRequest{Values: values, Prediction: prediction, Alpha: alpha}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the service summary.
func (c *Client) Stats() (*StatsResponse, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //rkvet:ignore dropperr read-side body close; nothing to recover
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) post(path string, req, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close() //rkvet:ignore dropperr read-side body close; nothing to recover
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func httpError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) //rkvet:ignore dropperr best-effort read of the error body; the status line already carries the failure
	return fmt.Errorf("service: %s: %s", resp.Status, bytes.TrimSpace(msg))
}
