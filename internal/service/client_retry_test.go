package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/feature"
)

// scriptedServer answers the scripted statuses in order, then 200s forever.
// A status of -1 resets the connection instead of answering.
func scriptedServer(t *testing.T, script []int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n < len(script) {
			switch code := script[n]; code {
			case -1:
				hj, ok := w.(http.Hijacker)
				if !ok {
					t.Error("response writer cannot hijack")
					return
				}
				conn, _, err := hj.Hijack()
				if err != nil {
					t.Error(err)
					return
				}
				conn.Close() //rkvet:ignore dropperr deliberate mid-request reset
				return
			case http.StatusOK:
			default:
				if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
					w.Header().Set("Retry-After", "2")
				}
				http.Error(w, "scripted failure", code)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"context_size":1,"alpha":1}`)); err != nil {
			t.Error(err)
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestClientRetryPolicy(t *testing.T) {
	cases := []struct {
		name       string
		script     []int
		maxRetries int
		wantOK     bool
		wantHits   int64
		wantSleeps int
		wantErr    string
	}{
		{name: "clean first try", script: nil, maxRetries: 3, wantOK: true, wantHits: 1, wantSleeps: 0},
		{name: "503 then ok", script: []int{503}, maxRetries: 3, wantOK: true, wantHits: 2, wantSleeps: 1},
		{name: "429 429 then ok", script: []int{429, 429}, maxRetries: 3, wantOK: true, wantHits: 3, wantSleeps: 2},
		{name: "connection reset then ok", script: []int{-1}, maxRetries: 3, wantOK: true, wantHits: 2, wantSleeps: 1},
		// The reset lands on a reused keep-alive connection, which net/http
		// replays itself for idempotent requests — so the client's own loop
		// only backs off for the 503 and the 429.
		{name: "mixed transient then ok", script: []int{503, -1, 429}, maxRetries: 3, wantOK: true, wantHits: 4, wantSleeps: 2},
		{name: "budget exhausted", script: []int{503, 503, 503}, maxRetries: 2, wantOK: false, wantHits: 3, wantSleeps: 2, wantErr: "503"},
		{name: "400 is permanent", script: []int{400}, maxRetries: 3, wantOK: false, wantHits: 1, wantSleeps: 0, wantErr: "400"},
		{name: "409 is permanent", script: []int{409}, maxRetries: 3, wantOK: false, wantHits: 1, wantSleeps: 0, wantErr: "409"},
		{name: "500 is permanent", script: []int{500}, maxRetries: 3, wantOK: false, wantHits: 1, wantSleeps: 0, wantErr: "500"},
		{name: "retries disabled", script: []int{503}, maxRetries: 0, wantOK: false, wantHits: 1, wantSleeps: 0, wantErr: "503"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, hits := scriptedServer(t, tc.script)
			c := NewClient(ts.URL)
			c.MaxRetries = tc.maxRetries
			var sleeps []time.Duration
			c.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
			c.jitter = func(d time.Duration) time.Duration { return d }
			_, err := c.Stats()
			if tc.wantOK != (err == nil) {
				t.Fatalf("err = %v, want ok=%v", err, tc.wantOK)
			}
			if err != nil && tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %v does not mention %s", err, tc.wantErr)
			}
			if hits.Load() != tc.wantHits {
				t.Fatalf("server saw %d attempts, want %d", hits.Load(), tc.wantHits)
			}
			if len(sleeps) != tc.wantSleeps {
				t.Fatalf("client slept %d times, want %d", len(sleeps), tc.wantSleeps)
			}
			// Every backoff before a retry of a 503/429 must honour the
			// server's Retry-After: 2s hint (the hijack case sends none).
			for i, d := range sleeps {
				if i < len(tc.script) && tc.script[i] != -1 && d < 2*time.Second {
					t.Fatalf("sleep %d = %v ignored Retry-After 2s", i, d)
				}
			}
		})
	}
}

func TestClientBackoffGrowsAndCaps(t *testing.T) {
	c := NewClient("http://unused")
	c.BaseDelay = 10 * time.Millisecond
	c.MaxDelay = 80 * time.Millisecond
	c.jitter = func(d time.Duration) time.Duration { return d }
	var got []time.Duration
	c.sleep = func(d time.Duration) { got = append(got, d) }
	for attempt := 0; attempt < 6; attempt++ {
		c.backoff(attempt, 0)
	}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("attempt %d slept %v, want %v (exponential, capped)", i, got[i], want[i]*time.Millisecond)
		}
	}
	// Retry-After above the computed backoff wins.
	got = got[:0]
	c.backoff(0, time.Second)
	if got[0] != time.Second {
		t.Fatalf("Retry-After not honoured: slept %v", got[0])
	}
}

// Retrying POSTs must re-send the body each attempt, not a drained reader.
func TestClientRetriesRepostBody(t *testing.T) {
	schema := feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
		{Name: "Area", Values: []string{"Urban", "Rural"}},
	}, []string{"Denied", "Approved"})
	srv, err := New(schema, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var first atomic.Bool
	mux := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.sleep = func(time.Duration) {}
	c.jitter = func(d time.Duration) time.Duration { return d }
	c.BaseDelay = time.Nanosecond
	if err := c.Observe(map[string]string{
		"Income": "3-4K", "Credit": "poor", "Area": "Urban",
	}, "Denied"); err != nil {
		t.Fatal(err)
	}
	if srv.ctx.Len() != 1 {
		t.Fatalf("context %d after retried observe, want 1", srv.ctx.Len())
	}
}
