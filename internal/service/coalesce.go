package service

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Singleflight coalescing for the explain path (DESIGN.md §15). Under
// duplicate-heavy traffic, N concurrent identical requests that miss the
// cache would all run the same solve; the flight group elects the first as
// leader and parks the rest on its result, so exactly one solve runs per
// (key) at a time. Flight keys are the canonical cache keys, which embed the
// context version — and because every explain holds the state read-lock for
// its solve, the version cannot move under a flight: all members would have
// solved byte-identical problems.
//
// Deadline contract: the leader solves under its own request context only —
// a coalesced waiter never extends (or shortens) the leader's deadline. A
// waiter whose own deadline fires first abandons the flight and completes on
// its own expired context (the anytime solver's cheap degraded path), and a
// waiter handed a degraded result it could have beaten (its budget exceeds
// the leader's) re-solves instead of accepting it — mirroring the cache's
// degraded-entry serve rule.

// errFlightPanic is handed to waiters when the leader's solve panicked; the
// waiters fall back to solving themselves while the leader's own request
// surfaces the panic through the recovery middleware.
var errFlightPanic = errors.New("service: coalesced leader panicked")

// errFlightAbandoned is returned to a waiter whose own context fired before
// the leader finished.
var errFlightAbandoned = errors.New("service: waiter deadline expired before the coalesced solve finished")

// solveOutcome is what one solve produced: a cacheable entry or an error.
// Exactly one of e / err is set (ErrNoKey is encoded as e.noKey, not err —
// it is a deterministic answer, not a failure).
type solveOutcome struct {
	e   *cachedExplain
	err error
}

// flightCall is one in-progress solve and the waiters parked on it.
type flightCall struct {
	done   chan struct{} // closed when out is ready
	out    solveOutcome
	budget time.Duration // the leader's solve budget (0 = unbounded)
}

// flightGroup coalesces concurrent solves by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall // guarded by mu
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs solve once per key among concurrent callers. The first caller
// becomes the leader and runs solve on its own goroutine (and its own
// context); the rest wait for the leader's outcome or their own context,
// whichever fires first. coalesced reports whether this caller waited
// instead of solving; leaderBudget is the budget the outcome was solved
// under (callers apply the degraded serve rule against it).
//
// A panicking solve is re-panicked in the leader after the flight is
// cleaned up, so one poisoned request cannot strand its waiters or wedge
// the key: waiters receive errFlightPanic and fall back to solving
// themselves.
func (g *flightGroup) do(ctx context.Context, key string, budget time.Duration, solve func() solveOutcome) (out solveOutcome, leaderBudget time.Duration, coalesced bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.out, c.budget, true
		case <-ctx.Done():
			return solveOutcome{err: errFlightAbandoned}, c.budget, true
		}
	}
	c := &flightCall{done: make(chan struct{}), budget: budget}
	g.calls[key] = c
	g.mu.Unlock()

	panicked := true
	defer func() {
		if panicked {
			c.out = solveOutcome{err: errFlightPanic}
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.out = solve()
	panicked = false
	return c.out, budget, false
}
