package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/faultinject"
	"github.com/xai-db/relativekeys/internal/feature"
)

// TestCoalesceStress is the singleflight contract under load: hundreds of
// concurrent identical requests produce exactly one solve. The solver blocks
// until every request has entered the handler, so no request can arrive after
// the flight completes and miss both the flight and the cache window.
func TestCoalesceStress(t *testing.T) {
	workers := 200
	if testing.Short() {
		workers = 60
	}
	schema := robustSchema(t)
	var (
		solves  atomic.Int64
		entered atomic.Int64
		release = make(chan struct{})
	)
	solve := func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
		solves.Add(1)
		<-release
		return core.SRKAnytime(ctx, c, x, y, alpha)
	}
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, Solve: solve, SolverTag: "gated"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	gate := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/explain" {
			entered.Add(1)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(gate)
	t.Cleanup(ts.Close)

	// Release the leader's solve only after every request is inside the
	// handler (or a generous timeout fires — the assertion still applies).
	go func() {
		deadline := time.After(10 * time.Second)
		for entered.Load() < int64(workers) {
			select {
			case <-deadline:
				close(release)
				return
			case <-time.After(time.Millisecond):
			}
		}
		close(release)
	}()

	body, err := json.Marshal(ExplainRequest{
		Values:     map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"},
		Prediction: "Denied",
	})
	if err != nil {
		t.Fatal(err)
	}
	bodies := make([][]byte, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/explain", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close() //rkvet:ignore dropperr test teardown
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if got := solves.Load(); got != 1 {
		t.Fatalf("%d identical concurrent requests ran %d solves, want 1", workers, got)
	}
	for i := 1; i < workers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if hits, coalesced := srv.cacheHits.Load(), srv.cacheCoalesced.Load(); coalesced == 0 || 1+hits+coalesced != int64(workers) {
		t.Fatalf("accounting: 1 miss + %d hits + %d coalesced != %d requests", hits, coalesced, workers)
	}
}

// TestCoalesceWaiterDeadline pins the deadline contract: a coalesced waiter
// never extends the leader's solve, and a waiter whose own deadline fires
// first abandons the flight and completes degraded on its expired context
// instead of hanging until the leader finishes.
func TestCoalesceWaiterDeadline(t *testing.T) {
	schema := robustSchema(t)
	var calls atomic.Int64
	block := make(chan struct{})
	solve := func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
		if calls.Add(1) == 1 {
			<-block // the leader's slow solve
			return core.SRKAnytime(ctx, c, x, y, alpha)
		}
		// The waiter's fallback self-solve on its expired context.
		return core.Key{0}, true, nil
	}
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, Solve: solve, SolverTag: "blocking"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req := ExplainRequest{
		Values:     map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"},
		Prediction: "Denied",
	}
	leaderDone := make(chan []byte, 1)
	go func() {
		_, body, _ := explainRawErr(ts.URL, req)
		leaderDone <- body
	}()
	// Wait for the leader to be inside its solve before sending the waiter.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	waiter := req
	waiter.DeadlineMS = 50
	start := time.Now()
	code, body, src := explainRawErr(ts.URL, waiter)
	waited := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("waiter status %d", code)
	}
	if waited > 5*time.Second {
		t.Fatalf("waiter took %v — it waited for the leader instead of abandoning at its deadline", waited)
	}
	var wresp ExplainResponse
	if err := json.Unmarshal(body, &wresp); err != nil {
		t.Fatal(err)
	}
	if !wresp.Degraded || src != "miss" {
		t.Fatalf("abandoning waiter: degraded=%v source=%q, want degraded fallback solve", wresp.Degraded, src)
	}
	select {
	case <-leaderDone:
		t.Fatal("leader finished before its solve was released")
	default:
	}
	close(block)
	select {
	case lbody := <-leaderDone:
		var lresp ExplainResponse
		if err := json.Unmarshal(lbody, &lresp); err != nil {
			t.Fatal(err)
		}
		if lresp.Degraded {
			t.Fatalf("unbounded leader degraded — the waiter's deadline leaked into the leader's solve: %s", lbody)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("leader never finished")
	}
}

func explainRawErr(url string, req ExplainRequest) (int, []byte, string) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, nil, ""
	}
	resp, err := http.Post(url+"/explain", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, ""
	}
	defer resp.Body.Close()          //rkvet:ignore dropperr test teardown
	body, _ := io.ReadAll(resp.Body) //rkvet:ignore dropperr best-effort read; callers assert on status
	return resp.StatusCode, body, resp.Header.Get("X-RK-Cache")
}

// TestChaosCoalesce floods the cache + flight plane with duplicate-heavy
// concurrent traffic while the solver panics, errors, and stalls on an
// injected schedule. The contract: every request completes with a documented
// status, no waiter is stranded, and the cache is never poisoned — once the
// faults stop, every instance explains identically to a cache-bypassed solve.
func TestChaosCoalesce(t *testing.T) {
	schema := robustSchema(t)
	inj := faultinject.New(42)
	var faultsOn atomic.Bool
	faultsOn.Store(true)
	solve := func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
		if faultsOn.Load() {
			if inj.Roll(0.15) {
				panic("faultinject: solver panic")
			}
			if inj.Roll(0.15) {
				return nil, false, core.ErrDeadline
			}
			if inj.Roll(0.3) {
				t := time.NewTimer(5 * time.Millisecond)
				select {
				case <-ctx.Done():
					t.Stop()
				case <-t.C:
				}
			}
		}
		return core.SRKAnytimePar(ctx, c, x, y, alpha, 2)
	}
	srv, err := NewServer(Config{
		Schema:          schema,
		Alpha:           1.0,
		Solve:           solve,
		SolverTag:       "chaotic",
		DefaultDeadline: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	rows := []ExplainRequest{
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"},
		{Values: map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}, Prediction: "Approved"},
		{Values: map[string]string{"Income": "1-2K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"},
	}
	workers, iters := 16, 40
	if testing.Short() {
		workers, iters = 8, 15
	}
	allowed := map[int]bool{200: true, 409: true, 500: true, 503: true}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := rows[(w+i)%len(rows)]
				if i%5 == 0 {
					req.DeadlineMS = 5 // mixed budgets race the degraded serve rule
				}
				code, _, _ := explainRawErr(ts.URL, req)
				if code == 0 {
					t.Errorf("worker %d: transport error", w)
					return
				}
				if !allowed[code] {
					t.Errorf("worker %d: status %d outside the contract", w, code)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("chaos load wedged — a waiter was stranded")
	}

	// Faults off: the cache must now serve only correct, byte-identical
	// explanations. Bump the context version first — chaos-era entries
	// (including legitimately degraded ones) are then unreachable, so any
	// disagreement below means an injected error or panic leaked into the
	// cache, not that a valid degraded entry answered within its budget.
	faultsOn.Store(false)
	obs, err := json.Marshal(ObserveRequest{
		Values:     map[string]string{"Income": "1-2K", "Credit": "good", "Area": "Rural"},
		Prediction: "Approved",
	})
	if err != nil {
		t.Fatal(err)
	}
	oresp, err := http.Post(ts.URL+"/observe", "application/json", bytes.NewReader(obs))
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close() //rkvet:ignore dropperr test teardown
	if oresp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos observe: %s", oresp.Status)
	}
	for _, req := range rows {
		bypass := req
		bypass.NoCache = true
		refCode, refBody, _ := explainRawErr(ts.URL, bypass)
		if refCode != http.StatusOK && refCode != http.StatusConflict {
			t.Fatalf("post-chaos bypass status %d", refCode)
		}
		for i := 0; i < 3; i++ {
			code, body, src := explainRawErr(ts.URL, req)
			if code != refCode || !bytes.Equal(body, refBody) {
				t.Fatalf("post-chaos %s (%d) differs from bypass (%d):\n%s\nvs\n%s", src, code, refCode, body, refBody)
			}
		}
	}
}
