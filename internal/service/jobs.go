package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/persist"
)

// Async ExplainAll jobs (DESIGN.md §15). A large batch explain is minutes of
// solver work — far past any sane HTTP deadline — so batches run as jobs:
// POST /jobs acks immediately with an id, GET /jobs?id= polls progress and
// the completed prefix, GET /jobs/stream?id= tails results as they finish.
// The runner is a single goroutine that solves items sequentially, taking the
// state read-lock once per item, so a running batch interleaves with
// interactive traffic instead of starving it; each item goes through the
// explanation cache and flight group like any other explain, so batches and
// interactive requests share work.
//
// With a state directory configured, the job spec is written atomically at
// submit and every completed item is checkpointed to a per-job CRC log before
// it is acked into memory. A restart reloads unfinished jobs, replays the
// checkpoint log (re-serving byte-identical bytes for the completed prefix,
// truncating a torn final record), and resumes solving at the first
// unfinished item.

// Job lifecycle states.
const (
	jobQueued  = "queued"
	jobRunning = "running"
	jobDone    = "done"
	jobFailed  = "failed"
)

const (
	defaultMaxJobItems = 100000
	defaultJobsKept    = 64
	jobSpecSuffix      = ".job"
	jobLogSuffix       = ".results"
)

// JobItemResult is one batch item's outcome, stored and served verbatim: the
// bytes checkpointed at solve time are the bytes every later poll, stream,
// and post-restart read returns.
type JobItemResult struct {
	Index int              `json:"index"`
	NoKey bool             `json:"no_key,omitempty"`
	Error string           `json:"error,omitempty"`
	Resp  *ExplainResponse `json:"explanation,omitempty"`
}

// JobSubmitRequest is the POST /jobs body: the batch items plus the optional
// alpha override and per-item solve deadline, which default like /explain.
type JobSubmitRequest struct {
	Items      []ExplainItem `json:"items"`
	Alpha      float64       `json:"alpha,omitempty"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
}

// ExplainItem is one batch member in wire form.
type ExplainItem struct {
	Values     map[string]string `json:"values"`
	Prediction string            `json:"prediction"`
}

// JobStatus is the GET /jobs?id= body. Results holds the completed prefix in
// item order (the runner is sequential, so completion order is index order).
type JobStatus struct {
	ID      string            `json:"id"`
	State   string            `json:"state"`
	Total   int               `json:"total"`
	Done    int               `json:"done"`
	Error   string            `json:"error,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
}

// JobProgress is the per-job line in /stats and GET /jobs.
type JobProgress struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// JobsStats aggregates the job subsystem for /stats.
type JobsStats struct {
	Submitted int64         `json:"submitted"`
	Completed int64         `json:"completed"`
	Failed    int64         `json:"failed,omitempty"`
	Resumed   int64         `json:"resumed,omitempty"`
	ItemsDone int64         `json:"items_done"`
	Jobs      []JobProgress `json:"jobs,omitempty"`
}

// jobSpecFile is the durable form of one submitted batch, written atomically
// before the submit is acked: what a restart needs to finish the job.
type jobSpecFile struct {
	ID         string    `json:"id"`
	Alpha      float64   `json:"alpha"`
	DeadlineMS int64     `json:"deadline_ms,omitempty"`
	Items      []jobItem `json:"items"`
}

type jobItem struct {
	X []int32 `json:"x"`
	Y int32   `json:"y"`
}

// job is one batch in memory.
type job struct {
	id       string
	alpha    float64
	deadline time.Duration
	items    []feature.Labeled
	log      *persist.JobLog // nil = memory-only job

	mu       sync.Mutex
	state    string            // guarded by mu
	results  []json.RawMessage // guarded by mu; completed prefix, index order
	errMsg   string            // guarded by mu
	progress chan struct{}     // guarded by mu; closed and replaced on every change
}

// bump wakes every waiter. Callers hold j.mu.
func (j *job) bumpLocked() {
	close(j.progress)
	j.progress = make(chan struct{})
}

func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	if errMsg != "" {
		j.errMsg = errMsg
	}
	j.bumpLocked()
}

// complete acks one finished item into memory (after it is durable, when a
// log is attached).
func (j *job) complete(body json.RawMessage) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = append(j.results, body)
	j.bumpLocked()
}

// snapshot returns the status plus the channel that closes on the next
// change, so a streamer can wait without polling.
func (j *job) snapshot(withResults bool) (JobStatus, chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:    j.id,
		State: j.state,
		Total: len(j.items),
		Done:  len(j.results),
		Error: j.errMsg,
	}
	if withResults {
		st.Results = append([]json.RawMessage(nil), j.results...)
	}
	return st, j.progress
}

// jobStore owns every job and the single runner goroutine. Its lock is its
// own domain below Server.mu: /stats reads it while holding the state
// read-lock, and the runner never touches Server.mu while holding it.
type jobStore struct {
	srv      *Server
	dir      string // "" = memory-only jobs
	maxItems int
	kept     int

	mu       sync.Mutex
	jobs     map[string]*job // guarded by mu
	order    []string        // guarded by mu; submission order, for listing
	finished []string        // guarded by mu; finished ids oldest-first, for pruning
	queue    []*job          // guarded by mu
	runnerOn bool            // guarded by mu
	stopped  bool            // guarded by mu

	wake chan struct{} // cap 1; nudges the runner
	stop chan struct{} // closed by close()

	submitted, completed, failed, resumed, itemsDone atomic.Int64
}

// newJobStore builds the store and resumes any unfinished persisted jobs.
func newJobStore(srv *Server, dir string, maxItems, kept int) (*jobStore, error) {
	if maxItems <= 0 {
		maxItems = defaultMaxJobItems
	}
	if kept <= 0 {
		kept = defaultJobsKept
	}
	st := &jobStore{
		srv:      srv,
		dir:      dir,
		maxItems: maxItems,
		kept:     kept,
		jobs:     make(map[string]*job),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := st.resume(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// resume reloads persisted jobs: each spec file is paired with its checkpoint
// log, the completed prefix is replayed into memory byte-for-byte, and
// anything unfinished re-enters the queue. A torn final checkpoint (crash
// signature) is truncated; a mid-file corrupt log is discarded and the batch
// recomputed from its spec — job results are derived data.
func (st *jobStore) resume() error {
	names, err := filepath.Glob(filepath.Join(st.dir, "*"+jobSpecSuffix))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		var spec jobSpecFile
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("service: job spec %s: %w", filepath.Base(name), err)
		}
		if spec.ID == "" || strings.TrimSuffix(filepath.Base(name), jobSpecSuffix) != spec.ID {
			return fmt.Errorf("service: job spec %s: id %q does not match the file name", filepath.Base(name), spec.ID)
		}
		j := &job{
			id:       spec.ID,
			alpha:    spec.Alpha,
			deadline: time.Duration(spec.DeadlineMS) * time.Millisecond,
			state:    jobQueued,
			progress: make(chan struct{}),
		}
		for _, it := range spec.Items {
			j.items = append(j.items, feature.Labeled{X: feature.Instance(it.X), Y: feature.Label(it.Y)})
		}
		logPath := st.logPath(spec.ID)
		next := 0
		res, err := persist.ReplayJobLog(logPath, func(index int, body []byte) error {
			if index != next {
				return fmt.Errorf("checkpoint %d out of order (want %d)", index, next)
			}
			next++
			j.results = append(j.results, append(json.RawMessage(nil), body...))
			return nil
		})
		if err != nil {
			// Job results are recomputable; a damaged log costs re-solving, not
			// data. Start the batch over.
			st.srv.logger.Warn("discarding corrupt job checkpoint log", "job", spec.ID, "err", err)
			j.results = nil
			if rerr := os.Remove(logPath); rerr != nil && !os.IsNotExist(rerr) {
				return rerr
			}
		} else if res.Torn {
			// Drop the torn tail from the file itself so the reopened O_APPEND
			// log does not strand a fresh record behind the garbage line.
			if terr := os.Truncate(logPath, res.Offset); terr != nil {
				return fmt.Errorf("service: dropping torn job log tail: %w", terr)
			}
		}
		if len(j.results) >= len(j.items) {
			j.state = jobDone
			st.addFinishedLocked(j) // store not shared yet; lock not needed but harmless
			continue
		}
		log, err := persist.OpenJobLog(logPath)
		if err != nil {
			return err
		}
		j.log = log
		st.resumed.Add(1)
		jobEvtResumed.Inc()
		if err := st.enqueue(j); err != nil {
			return err
		}
	}
	return nil
}

// addFinishedLocked registers a finished job and prunes past the retention
// bound. Callers hold st.mu (or own the store exclusively, as resume does).
func (st *jobStore) addFinishedLocked(j *job) {
	st.jobs[j.id] = j
	st.order = append(st.order, j.id)
	st.finished = append(st.finished, j.id)
	st.pruneLocked()
}

// pruneLocked drops the oldest finished jobs past the kept bound, with their
// files. Callers hold st.mu.
func (st *jobStore) pruneLocked() {
	for len(st.finished) > st.kept {
		id := st.finished[0]
		st.finished = st.finished[1:]
		delete(st.jobs, id)
		for i, oid := range st.order {
			if oid == id {
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
		if st.dir != "" {
			os.Remove(st.specPath(id)) //rkvet:ignore dropperr best-effort prune of a retired job's files
			os.Remove(st.logPath(id))  //rkvet:ignore dropperr best-effort prune of a retired job's files
		}
	}
}

func (st *jobStore) specPath(id string) string { return filepath.Join(st.dir, id+jobSpecSuffix) }
func (st *jobStore) logPath(id string) string  { return filepath.Join(st.dir, id+jobLogSuffix) }

// submit validates, persists, and queues one batch, returning the job id.
func (st *jobStore) submit(items []feature.Labeled, alpha float64, deadline time.Duration) (string, error) {
	idb := make([]byte, 8)
	if _, err := rand.Read(idb); err != nil {
		return "", err
	}
	id := hex.EncodeToString(idb)
	j := &job{
		id:       id,
		alpha:    alpha,
		deadline: deadline,
		items:    items,
		state:    jobQueued,
		progress: make(chan struct{}),
	}
	if st.dir != "" {
		spec := jobSpecFile{ID: id, Alpha: alpha, DeadlineMS: int64(deadline / time.Millisecond)}
		for _, li := range items {
			spec.Items = append(spec.Items, jobItem{X: append([]int32(nil), li.X...), Y: li.Y})
		}
		if err := persist.WriteFileAtomic(st.specPath(id), func(w io.Writer) error {
			return json.NewEncoder(w).Encode(&spec)
		}); err != nil {
			return "", err
		}
		log, err := persist.OpenJobLog(st.logPath(id))
		if err != nil {
			return "", err
		}
		j.log = log
	}
	if err := st.enqueue(j); err != nil {
		// The store stopped between the handler's drain check and here; undo
		// the durable submit so the rejected job does not resurrect on the
		// next boot behind the client's 503.
		st.closeJobLog(j)
		if st.dir != "" {
			os.Remove(st.specPath(id)) //rkvet:ignore dropperr best-effort cleanup of a rejected submit
			os.Remove(st.logPath(id))  //rkvet:ignore dropperr best-effort cleanup of a rejected submit
		}
		return "", err
	}
	st.submitted.Add(1)
	jobEvtSubmitted.Inc()
	return id, nil
}

// enqueue registers the job and nudges (lazily starting) the runner. It
// re-checks stopped under st.mu: a submit racing Close() must be rejected
// here, or the job would sit "queued" forever with no runner to pick it up.
func (st *jobStore) enqueue(j *job) error {
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		return errDraining
	}
	if _, ok := st.jobs[j.id]; !ok {
		st.jobs[j.id] = j
		st.order = append(st.order, j.id)
	}
	st.queue = append(st.queue, j)
	if !st.runnerOn {
		st.runnerOn = true
		go st.run()
	}
	st.mu.Unlock()
	select {
	case st.wake <- struct{}{}:
	default:
	}
	return nil
}

// run is the single runner goroutine: pop, solve, repeat.
func (st *jobStore) run() {
	for {
		st.mu.Lock()
		if st.stopped {
			st.mu.Unlock()
			return
		}
		var j *job
		if len(st.queue) > 0 {
			j = st.queue[0]
			st.queue = st.queue[1:]
		}
		st.mu.Unlock()
		if j == nil {
			select {
			case <-st.wake:
				continue
			case <-st.stop:
				return
			}
		}
		st.runJob(j)
	}
}

// runJob solves the job's unfinished suffix item by item, checkpointing each
// result before acking it. The state read-lock is taken once per item, so a
// long batch never starves interactive explains; each item rides the
// explanation cache and flight group like interactive traffic.
func (st *jobStore) runJob(j *job) {
	j.setState(jobRunning, "")
	start := len(j.results) // runner owns the job; no concurrent writer
	for idx := start; idx < len(j.items); idx++ {
		select {
		case <-st.stop:
			// Shutting down: leave the job queued; a persisted job resumes
			// from its checkpoint on the next boot.
			j.setState(jobQueued, "")
			return
		default:
		}
		body, err := st.solveItem(j, idx)
		if err == nil && j.log != nil {
			if err = j.log.Append(idx, body); err == nil {
				err = j.log.Sync()
			}
		}
		if err != nil {
			// The item could not be solved or made durable; the batch cannot
			// claim completeness, so it fails loudly rather than skipping.
			st.failed.Add(1)
			jobEvtFailed.Inc()
			j.setState(jobFailed, fmt.Sprintf("item %d: %v", idx, err))
			st.closeJobLog(j)
			st.retire(j)
			return
		}
		st.itemsDone.Add(1)
		jobItemsDone.Inc()
		j.complete(body)
	}
	st.completed.Add(1)
	jobEvtCompleted.Inc()
	j.setState(jobDone, "")
	st.closeJobLog(j)
	st.retire(j)
}

func (st *jobStore) closeJobLog(j *job) {
	if j.log == nil {
		return
	}
	if err := j.log.Close(); err != nil {
		st.srv.logger.Warn("closing job checkpoint log", "job", j.id, "err", err)
	}
	j.log = nil
}

func (st *jobStore) retire(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.finished = append(st.finished, j.id)
	st.pruneLocked()
}

// solveItem runs one batch item through the standard explain path and renders
// the durable result bytes.
func (st *jobStore) solveItem(j *job, idx int) (json.RawMessage, error) {
	ctx := context.Background() //rkvet:ignore ctxflow a job outlives its submitting request; the per-item deadline below is its only bound
	if j.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.deadline)
		defer cancel()
	}
	s := st.srv
	s.mu.RLock()
	out, _ := s.explainLocked(ctx, j.items[idx], j.alpha, j.deadline, false)
	s.mu.RUnlock()
	res := JobItemResult{Index: idx}
	switch {
	case out.err != nil:
		res.Error = out.err.Error()
	case out.e.noKey:
		res.NoKey = true
	default:
		if out.e.resp.Degraded {
			s.degradedTotal.Add(1)
			explainDegraded.Inc()
		}
		resp := out.e.resp
		res.Resp = &resp
	}
	return json.Marshal(&res)
}

// get returns the job by id.
func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list returns progress for every known job in submission order.
func (st *jobStore) list() []JobProgress {
	st.mu.Lock()
	ids := append([]string(nil), st.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, st.jobs[id])
	}
	st.mu.Unlock()
	out := make([]JobProgress, 0, len(jobs))
	for _, j := range jobs {
		s, _ := j.snapshot(false)
		out = append(out, JobProgress{ID: s.ID, State: s.State, Done: s.Done, Total: s.Total})
	}
	return out
}

// statsSnapshot renders the /stats block: aggregate counters plus per-job
// progress for unfinished jobs.
func (st *jobStore) statsSnapshot() *JobsStats {
	js := &JobsStats{
		Submitted: st.submitted.Load(),
		Completed: st.completed.Load(),
		Failed:    st.failed.Load(),
		Resumed:   st.resumed.Load(),
		ItemsDone: st.itemsDone.Load(),
	}
	if js.Submitted == 0 && js.Completed == 0 && js.Resumed == 0 {
		return nil
	}
	for _, p := range st.list() {
		if p.State == jobQueued || p.State == jobRunning {
			js.Jobs = append(js.Jobs, p)
		}
	}
	return js
}

// close stops the runner; a running persisted job resumes on the next boot.
func (st *jobStore) close() {
	st.mu.Lock()
	if st.stopped {
		st.mu.Unlock()
		return
	}
	st.stopped = true
	st.mu.Unlock()
	close(st.stop)
}

// handleJobs serves POST /jobs (submit) and GET /jobs (poll one by id, or
// list all).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		id := r.URL.Query().Get("id")
		if id == "" {
			writeJSON(w, s.jobs.list())
			return
		}
		j, ok := s.jobs.get(id)
		if !ok {
			http.Error(w, "unknown job "+id, http.StatusNotFound)
			return
		}
		status, _ := j.snapshot(true)
		writeJSON(w, status)
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Items) == 0 {
		http.Error(w, "a job needs at least one item", http.StatusBadRequest)
		return
	}
	if len(req.Items) > s.jobs.maxItems {
		http.Error(w, fmt.Sprintf("job carries %d items, the service caps batches at %d", len(req.Items), s.jobs.maxItems), http.StatusRequestEntityTooLarge)
		return
	}
	alpha := s.alpha
	if req.Alpha != 0 { //rkvet:ignore floateq 0 is the JSON omitted-field sentinel
		if err := core.ValidateAlpha(req.Alpha); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		alpha = req.Alpha
	}
	if req.DeadlineMS < 0 {
		http.Error(w, "deadline_ms must be positive", http.StatusBadRequest)
		return
	}
	deadline := s.defaultDeadline
	if req.DeadlineMS != 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	items := make([]feature.Labeled, 0, len(req.Items))
	for i, it := range req.Items {
		li, err := s.decode(it.Values, it.Prediction)
		if err != nil {
			http.Error(w, fmt.Sprintf("item %d: %v", i, err), http.StatusBadRequest)
			return
		}
		items = append(items, li)
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		shedDraining.Inc()
		unavailable(w, errDraining.Error())
		return
	}
	id, err := s.jobs.submit(items, alpha, deadline)
	if err != nil {
		unavailable(w, "job submit: "+err.Error())
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{"id": id, "items": len(items)})
}

// handleJobStream tails one job as newline-delimited JSON: each line is a
// JobItemResult exactly as checkpointed, flushed as it completes; the stream
// ends when the job finishes (or fails, with a final error line).
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	j, ok := s.jobs.get(id)
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		status, change := j.snapshot(true)
		for ; sent < len(status.Results); sent++ {
			// Two writes, not append(result, '\n'): the RawMessage backing
			// array is shared with the stored job results and every other
			// streamer, and an in-place append would race on the byte past len.
			if _, err := w.Write(status.Results[sent]); err != nil {
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if status.State == jobDone {
			return
		}
		if status.State == jobFailed {
			fmt.Fprintf(w, "{\"error\":%q}\n", status.Error)
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		case <-s.jobs.stop:
			return
		}
	}
}
