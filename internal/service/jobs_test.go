package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/persist"
)

// pollJob polls GET /jobs?id= until the job reaches a terminal state.
func pollJob(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/jobs?id=" + id)
		if err != nil {
			t.Fatal(err)
		}
		var status JobStatus
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close() //rkvet:ignore dropperr test teardown
		if err != nil {
			t.Fatal(err)
		}
		if status.State == jobDone || status.State == jobFailed {
			return status
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish")
	return JobStatus{}
}

func submitJob(t *testing.T, url string, req JobSubmitRequest) (string, int) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test teardown
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body) //rkvet:ignore dropperr diagnostic read on a failed submit
		return string(body), resp.StatusCode
	}
	var ack struct {
		ID    string `json:"id"`
		Items int    `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack.ID, resp.StatusCode
}

// TestJobLifecycle submits a batch on a memory-only server, polls it to
// completion, and checks every item agrees with a direct /explain of the same
// instance — batches must ride the same solve path as interactive traffic.
func TestJobLifecycle(t *testing.T) {
	_, ts, client := testServer(t, 0)
	observeAll(t, client)

	items := []ExplainItem{
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"},
		{Values: map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}, Prediction: "Approved"},
		// The context contradicts this one: its item records no_key, and the
		// batch still completes.
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Approved"},
	}
	id, code := submitJob(t, ts.URL, JobSubmitRequest{Items: items})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, id)
	}
	status := pollJob(t, ts.URL, id)
	if status.State != jobDone || status.Done != 3 || status.Total != 3 || len(status.Results) != 3 {
		t.Fatalf("status = %+v", status)
	}
	for i, raw := range status.Results {
		var res JobItemResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Index != i {
			t.Fatalf("result %d carries index %d", i, res.Index)
		}
		if i == 2 {
			if !res.NoKey || res.Resp != nil {
				t.Fatalf("contradicted item = %+v, want no_key", res)
			}
			continue
		}
		direct, err := client.Explain(items[i].Values, items[i].Prediction, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp == nil || !reflect.DeepEqual(*res.Resp, *direct) {
			t.Fatalf("item %d: job result %+v differs from direct explain %+v", i, res.Resp, direct)
		}
	}

	// The job appears in /stats until pruned past retention.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close() //rkvet:ignore dropperr test teardown
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs == nil || stats.Jobs.Submitted != 1 || stats.Jobs.Completed != 1 || stats.Jobs.ItemsDone != 3 {
		t.Fatalf("stats.jobs = %+v", stats.Jobs)
	}
}

// TestJobStream tails a finished job over /jobs/stream and checks the NDJSON
// lines equal the poll results byte for byte.
func TestJobStream(t *testing.T) {
	_, ts, client := testServer(t, 0)
	observeAll(t, client)
	items := []ExplainItem{
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"},
		{Values: map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}, Prediction: "Approved"},
	}
	id, code := submitJob(t, ts.URL, JobSubmitRequest{Items: items})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, id)
	}
	status := pollJob(t, ts.URL, id)

	resp, err := http.Get(ts.URL + "/jobs/stream?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //rkvet:ignore dropperr test teardown
	sc := bufio.NewScanner(resp.Body)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(status.Results) {
		t.Fatalf("stream returned %d lines, poll %d results", len(lines), len(status.Results))
	}
	for i := range lines {
		if !bytes.Equal(lines[i], status.Results[i]) {
			t.Fatalf("stream line %d differs from poll result:\n%s\nvs\n%s", i, lines[i], status.Results[i])
		}
	}
}

func TestJobValidation(t *testing.T) {
	schema := robustSchema(t)
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, MaxJobItems: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ok := ExplainItem{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"}
	cases := []struct {
		name string
		req  JobSubmitRequest
		want int
	}{
		{"empty batch", JobSubmitRequest{}, http.StatusBadRequest},
		{"over the item cap", JobSubmitRequest{Items: []ExplainItem{ok, ok, ok}}, http.StatusRequestEntityTooLarge},
		{"bad alpha", JobSubmitRequest{Items: []ExplainItem{ok}, Alpha: 2}, http.StatusBadRequest},
		{"negative deadline", JobSubmitRequest{Items: []ExplainItem{ok}, DeadlineMS: -1}, http.StatusBadRequest},
		{"undecodable item", JobSubmitRequest{Items: []ExplainItem{{Values: map[string]string{"Income": "nope"}, Prediction: "Denied"}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if body, code := submitJob(t, ts.URL, tc.req); code != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, body, tc.want)
		}
	}
	for _, path := range []string{"/jobs?id=missing", "/jobs/stream?id=missing"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //rkvet:ignore dropperr test teardown
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestJobSubmitAfterStoreStopped pins the shutdown race: a submit that slips
// past the handler's drain check after Close() began must be rejected by the
// store itself — accepted-but-never-run jobs would poll as "queued" forever.
// A rejected persisted submit also leaves no spec behind to resurrect on the
// next boot.
func TestJobSubmitAfterStoreStopped(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	li, err := srv.decode(map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, "Denied")
	if err != nil {
		t.Fatal(err)
	}
	srv.jobs.close()
	if _, err := srv.jobs.submit([]feature.Labeled{li}, 1.0, 0); !errors.Is(err, errDraining) {
		t.Fatalf("submit after store close: %v, want errDraining", err)
	}
	if n := len(srv.jobs.list()); n != 0 {
		t.Fatalf("rejected submit registered %d job(s)", n)
	}
	specs, err := filepath.Glob(filepath.Join(srv.jobs.dir, "*"+jobSpecSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 0 {
		t.Fatalf("rejected submit left spec files behind: %v", specs)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// seedPersistedServer boots a server over dir and persists the robust seed,
// so a later boot from the same dir recovers a populated context.
func seedPersistedServer(t *testing.T, dir string) {
	t.Helper()
	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// writeJobFixture handcrafts an unfinished persisted job: a 4-item spec plus
// a checkpoint log holding two completed items with distinctive marker bytes
// no real solve could produce — so the resume test can prove the completed
// prefix is replayed verbatim, not recomputed.
func writeJobFixture(t *testing.T, dir, id string) (markers [][]byte) {
	t.Helper()
	jobsDir := filepath.Join(dir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := jobSpecFile{
		ID:    id,
		Alpha: 1.0,
		Items: []jobItem{
			{X: []int32{1, 0, 0}, Y: 0},
			{X: []int32{2, 1, 1}, Y: 1},
			{X: []int32{1, 1, 1}, Y: 1},
			{X: []int32{0, 1, 0}, Y: 0},
		},
	}
	b, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobsDir, id+".job"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := persist.OpenJobLog(filepath.Join(jobsDir, id+".results"))
	if err != nil {
		t.Fatal(err)
	}
	markers = [][]byte{
		[]byte(`{"index":0,"explanation":{"features":["HANDCRAFTED-0"],"rule":"verbatim-replay-proof","precision":1,"coverage":1,"context_size":6}}`),
		[]byte(`{"index":1,"explanation":{"features":["HANDCRAFTED-1"],"rule":"verbatim-replay-proof","precision":1,"coverage":1,"context_size":6}}`),
	}
	for i, m := range markers {
		if err := log.Append(i, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	return markers
}

// TestJobResumeTornLog is the crash-resume contract: a job whose checkpoint
// log ends in a torn record (the kill -9 signature) resumes on the next boot,
// re-serves the intact completed prefix byte-for-byte without re-solving, and
// solves only the unfinished suffix.
func TestJobResumeTornLog(t *testing.T) {
	dir := t.TempDir()
	seedPersistedServer(t, dir)
	const id = "deadbeef00000001"
	markers := writeJobFixture(t, dir, id)

	// Tear the log: half of checkpoint 2, cut mid-record with no newline.
	logPath := filepath.Join(dir, "jobs", id+".results")
	torn, err := persist.EncodeJobResult(2, []byte(`{"index":2}`))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //rkvet:ignore dropperr test teardown
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status := pollJob(t, ts.URL, id)
	if status.State != jobDone || len(status.Results) != 4 {
		t.Fatalf("resumed job = %+v", status)
	}
	for i, m := range markers {
		if !bytes.Equal(status.Results[i], m) {
			t.Fatalf("checkpointed result %d was not re-served verbatim:\n%s\nvs\n%s", i, status.Results[i], m)
		}
	}
	// The suffix was solved fresh against the recovered context: each result
	// must agree with a direct explain of the same instance today.
	client := NewClient(ts.URL)
	want := []struct {
		values map[string]string
		pred   string
	}{
		{map[string]string{"Income": "3-4K", "Credit": "good", "Area": "Rural"}, "Approved"},
		{map[string]string{"Income": "1-2K", "Credit": "good", "Area": "Urban"}, "Denied"},
	}
	for i, w := range want {
		var res JobItemResult
		if err := json.Unmarshal(status.Results[2+i], &res); err != nil {
			t.Fatal(err)
		}
		if res.Index != 2+i || res.Resp == nil {
			t.Fatalf("resumed suffix result = %+v", res)
		}
		direct, err := client.Explain(w.values, w.pred, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*res.Resp, *direct) {
			t.Fatalf("suffix item %d: %+v differs from direct explain %+v", i, res.Resp, direct)
		}
	}
	// /stats records the resume.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close() //rkvet:ignore dropperr test teardown
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs == nil || stats.Jobs.Resumed != 1 {
		t.Fatalf("stats.jobs = %+v, want resumed=1", stats.Jobs)
	}
	// The torn bytes are gone from disk: a fresh replay reads exactly the
	// four intact records.
	res, err := persist.ReplayJobLog(logPath, func(int, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 4 || res.Torn {
		t.Fatalf("post-resume log replay = %+v, want 4 clean records", res)
	}
}

// TestJobResumeCorruptLog damages a checkpoint mid-file — not a crash tail —
// and asserts the resume treats the results as the derived data they are:
// the log is discarded and the whole batch recomputed, rather than refusing
// to boot or serving damaged bytes.
func TestJobResumeCorruptLog(t *testing.T) {
	dir := t.TempDir()
	seedPersistedServer(t, dir)
	const id = "deadbeef00000002"
	writeJobFixture(t, dir, id)

	logPath := filepath.Join(dir, "jobs", id+".results")
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	b[10] ^= 0xff // first record, followed by an intact one: mid-file damage
	if err := os.WriteFile(logPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //rkvet:ignore dropperr test teardown
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status := pollJob(t, ts.URL, id)
	if status.State != jobDone || len(status.Results) != 4 {
		t.Fatalf("recomputed job = %+v", status)
	}
	// Every result is freshly solved: the handcrafted marker bytes must not
	// survive a discarded log.
	for i, raw := range status.Results {
		if bytes.Contains(raw, []byte("HANDCRAFTED")) {
			t.Fatalf("result %d served from the corrupt log: %s", i, raw)
		}
		var res JobItemResult
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		if res.Index != i || res.Resp == nil {
			t.Fatalf("recomputed result %d = %+v", i, res)
		}
	}
}

// TestJobFinishedJobSurvivesRestart: a done persisted job stays pollable
// after a restart (its spec and log are still on disk within retention).
func TestJobFinishedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	schema := robustSchema(t)
	srvA, err := NewServer(Config{Schema: schema, Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	items := []ExplainItem{
		{Values: map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}, Prediction: "Denied"},
	}
	id, code := submitJob(t, tsA.URL, JobSubmitRequest{Items: items})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, id)
	}
	statusA := pollJob(t, tsA.URL, id)
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	srvB, err := NewServer(Config{Schema: schema, Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvB.Close() }) //rkvet:ignore dropperr test teardown
	tsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(tsB.Close)
	statusB := pollJob(t, tsB.URL, id)
	if statusB.State != jobDone || len(statusB.Results) != len(statusA.Results) {
		t.Fatalf("restarted status = %+v, want %+v", statusB, statusA)
	}
	for i := range statusA.Results {
		if !bytes.Equal(statusA.Results[i], statusB.Results[i]) {
			t.Fatalf("result %d changed across restart:\n%s\nvs\n%s", i, statusA.Results[i], statusB.Results[i])
		}
	}
}
