package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/obs"
)

func obsTestServer(t *testing.T) (*Server, *httptest.Server, *Client) {
	t.Helper()
	schema := feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
	}, []string{"Denied", "Approved"})
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL)
}

// TestHealthzReportsRollbacks: the observation-rollback counters must be
// visible in /healthz so an operator can see client-facing failures whose
// state was correctly undone.
func TestHealthzReportsRollbacks(t *testing.T) {
	srv, ts, client := obsTestServer(t)
	srv.monitor = &failingMonitor{allow: 1}

	row := map[string]string{"Income": "3-4K", "Credit": "poor"}
	if err := client.Observe(row, "Denied"); err != nil {
		t.Fatal(err)
	}
	if err := client.Observe(row, "Denied"); err == nil {
		t.Fatal("failing monitor not surfaced")
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q, want ok", h.Status)
	}
	if h.ContextSize != 1 {
		t.Fatalf("context_size %d, want 1 (rollback undone)", h.ContextSize)
	}
	if h.RollbacksMonitor != 1 {
		t.Fatalf("observe_rollbacks_monitor = %d, want 1", h.RollbacksMonitor)
	}
	if h.RollbacksWAL != 0 {
		t.Fatalf("observe_rollbacks_wal = %d, want 0", h.RollbacksWAL)
	}

	// Stats carries the same counters.
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RollbacksMonitor != 1 {
		t.Fatalf("stats rollbacks_monitor = %d, want 1", stats.RollbacksMonitor)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h2 HealthResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.Status != "draining" {
		t.Fatalf("status after Close %q, want draining", h2.Status)
	}
}

// TestMetricsEndpoint: the service mux serves the process registry in
// Prometheus text format, including the request series the middleware just
// recorded.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, client := obsTestServer(t)
	row := map[string]string{"Income": "1-2K", "Credit": "good"}
	if err := client.Observe(row, "Approved"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Explain(row, "Approved", 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	var sb strings.Builder
	if err := obs.Default.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`rk_http_requests_total{endpoint="explain",code="200"}`,
		`rk_http_requests_total{endpoint="observe",code="200"}`,
		"rk_http_request_seconds_bucket",
		"rk_solver_stage_seconds_bucket",
		"rk_observe_rollbacks_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q\n%s", want, body)
		}
	}
}

// TestTracedExplainRecordsSolverSpans: a sampled explain carries its trace
// through the request context down to the solver stages.
func TestTracedExplainRecordsSolverSpans(t *testing.T) {
	schema := feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
	}, []string{"Denied", "Approved"})
	tracer := obs.NewTracer(1, 8)
	srv, err := NewServer(Config{Schema: schema, Alpha: 1.0, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	row := map[string]string{"Income": "1-2K", "Credit": "poor"}
	if err := client.Observe(row, "Denied"); err != nil {
		t.Fatal(err)
	}
	if err := client.Observe(map[string]string{"Income": "3-4K", "Credit": "good"}, "Approved"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Explain(row, "Denied", 0); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Traces []struct {
			Name  string `json:"name"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	foundSpan := false
	for _, tr := range dump.Traces {
		if tr.Name != "explain" {
			continue
		}
		for _, sp := range tr.Spans {
			if sp.Name == "srk.greedy" {
				foundSpan = true
			}
		}
	}
	if !foundSpan {
		t.Fatalf("no explain trace with an srk.greedy span in %+v", dump)
	}
}
