package service

import (
	"github.com/xai-db/relativekeys/internal/obs"
)

// Service-layer observability (DESIGN.md §10): per-endpoint traffic and
// latency, admission-control sheds, degradation, and the durability failure
// counters that /healthz mirrors. Label children used on fixed paths are
// resolved once at init; the per-request middleware resolves its endpoint/code
// children through the vec cache (one lock + map hit, dwarfed by the handler).
var (
	httpRequests = obs.NewCounterVec("rk_http_requests_total",
		"HTTP requests served, by endpoint and status code.", "endpoint", "code")
	httpSeconds = obs.NewHistogramVec("rk_http_request_seconds",
		"End-to-end HTTP request latency, by endpoint.", nil, "endpoint")
	httpInFlight = obs.NewGauge("rk_http_inflight",
		"Requests currently being served.")

	shedReasons = obs.NewCounterVec("rk_shed_total",
		"Requests refused by admission control, by reason: overload (429); deadline_floor, draining and stale (503).",
		"reason")
	shedOverload      = shedReasons.With("overload")
	shedDeadlineFloor = shedReasons.With("deadline_floor")
	shedDraining      = shedReasons.With("draining")
	shedStale         = shedReasons.With("stale")

	explainDegraded = obs.NewCounter("rk_explain_degraded_total",
		"Explains answered with a deadline-degraded (valid but less succinct) key.")

	observeRollbacks = obs.NewCounterVec("rk_observe_rollbacks_total",
		"Observations rolled back after the context add, by cause: monitor rejection or WAL append failure.",
		"cause")
	rollbackMonitor = observeRollbacks.With("monitor")
	rollbackWAL     = observeRollbacks.With("wal")

	panicsRecoveredTotal = obs.NewCounter("rk_panics_recovered_total",
		"Handler panics converted to 500 responses.")
	walSyncFailures = obs.NewCounter("rk_wal_sync_failures_total",
		"WAL fsyncs that failed under the service sync policy (rows kept, durability uncertain).")
	snapshotFailures = obs.NewCounter("rk_snapshot_failures_total",
		"Periodic snapshot writes that failed (WAL still covers the delta).")

	clientRetries = obs.NewCounter("rk_client_retries_total",
		"Requests re-sent by the retrying client after a retryable response or transport error.")

	cacheOutcomes = obs.NewCounterVec("rk_explain_cache_total",
		"Explain requests through the explanation cache, by outcome: hit (served from cache), miss (solved and stored), coalesced (waited on an identical in-flight solve), bypass (cache off or no_cache).",
		"outcome")
	cacheHit       = cacheOutcomes.With("hit")
	cacheMiss      = cacheOutcomes.With("miss")
	cacheCoalesced = cacheOutcomes.With("coalesced")
	cacheBypass    = cacheOutcomes.With("bypass")
	cacheEvictions = obs.NewCounter("rk_explain_cache_evictions_total",
		"Cache entries evicted from the cold end by the entry or byte cap.")

	jobEvents = obs.NewCounterVec("rk_jobs_total",
		"Async ExplainAll job lifecycle events: submitted, completed, failed, resumed (picked up after a restart).",
		"event")
	jobEvtSubmitted = jobEvents.With("submitted")
	jobEvtCompleted = jobEvents.With("completed")
	jobEvtFailed    = jobEvents.With("failed")
	jobEvtResumed   = jobEvents.With("resumed")
	jobItemsDone    = obs.NewCounter("rk_job_items_total",
		"Batch items solved by the async job runner.")
)

// endpointLabel maps a request path to a bounded endpoint label so arbitrary
// client paths cannot mint unbounded label values.
func endpointLabel(path string) string {
	switch path {
	case "/schema", "/observe", "/explain", "/stats", "/healthz", "/metrics":
		return path[1:]
	case "/jobs", "/jobs/stream":
		return "jobs"
	}
	return "other"
}
