package service

import (
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/faultinject"
	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/persist"
)

func randomRows(seed int64, n int, s *feature.Schema) []feature.Labeled {
	rng := rand.New(rand.NewSource(seed))
	rows := make([]feature.Labeled, n)
	for i := range rows {
		x := make(feature.Instance, s.NumFeatures())
		for a := range x {
			x[a] = feature.Value(rng.Intn(len(s.Attrs[a].Values)))
		}
		rows[i] = feature.Labeled{X: x, Y: feature.Label(rng.Intn(len(s.Labels)))}
	}
	return rows
}

// assertSameKeys checks that two contexts explain a probe set byte-
// identically: same keys, same no-key verdicts.
func assertSameKeys(t *testing.T, got, want *core.Context, probes []feature.Labeled, alpha float64) {
	t.Helper()
	for i, p := range probes {
		kGot, errGot := core.SRK(got, p.X, p.Y, alpha)
		kWant, errWant := core.SRK(want, p.X, p.Y, alpha)
		if (errGot == nil) != (errWant == nil) {
			t.Fatalf("probe %d: recovered err=%v, reference err=%v", i, errGot, errWant)
		}
		if !kGot.Equal(kWant) {
			t.Fatalf("probe %d: recovered key %v, reference %v", i, kGot, kWant)
		}
	}
}

// The acceptance test for crash safety: a WAL torn mid-record by an injected
// kill -9 recovers every acknowledged observation — the torn row was 503'd
// and rolled back, so the recovered context explains byte-identically to a
// reference built from exactly the acknowledged rows.
func TestCrashRecoveryTornWAL(t *testing.T) {
	schema := robustSchema(t)
	dir := t.TempDir()
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// The cut lands mid-record a few observations in; everything after fails.
	torn := faultinject.NewTornWriter(f, 300)
	srvA, err := NewServer(Config{
		Schema:        schema,
		Alpha:         1.0,
		StateDir:      dir,
		WAL:           persist.NewWAL(torn),
		SnapshotEvery: 1 << 30, // WAL-only: no snapshot before the crash
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srvA.Handler())
	rows := randomRows(11, 12, schema)
	var acked []feature.Labeled
	sawReject := false
	for _, li := range rows {
		resp := postJSON(t, ts.URL+"/observe", ObserveRequest{
			Values:     valuesOf(schema, li.X),
			Prediction: schema.Labels[li.Y],
		})
		resp.Body.Close()
		switch resp.StatusCode {
		case 200:
			acked = append(acked, li)
		case 503:
			sawReject = true
		default:
			t.Fatalf("observe answered %d", resp.StatusCode)
		}
	}
	ts.Close()
	if len(acked) == 0 || !sawReject {
		t.Fatalf("cut did not split the stream: %d acked, reject=%v", len(acked), sawReject)
	}
	if srvA.ctx.Len() != len(acked) {
		t.Fatalf("pre-crash context %d rows, %d acked", srvA.ctx.Len(), len(acked))
	}
	// kill -9: the server is abandoned without Close; only the torn file
	// remains.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	srvB, err := NewServer(Config{Schema: schema, Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close() //rkvet:ignore dropperr test cleanup
	if srvB.ctx.Len() != len(acked) {
		t.Fatalf("recovered %d rows, want the %d acked", srvB.ctx.Len(), len(acked))
	}
	if srvB.Seq() != uint64(len(acked)) {
		t.Fatalf("recovered seq %d, want %d", srvB.Seq(), len(acked))
	}
	ref, err := New(schema, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Warm(acked); err != nil {
		t.Fatal(err)
	}
	assertSameKeys(t, srvB.ctx, ref.ctx, randomRows(12, 40, schema), 1.0)
}

// Snapshot + WAL replay compose: recovery re-admits the snapshot rows in
// arrival order, replays only records past the watermark, and retention
// keeps evicting oldest-first afterwards exactly as an uncrashed server
// would.
func TestRecoverySnapshotPlusWALWithRetention(t *testing.T) {
	schema := robustSchema(t)
	dir := t.TempDir()
	cfg := Config{Schema: schema, Alpha: 1.0, Retain: 6, StateDir: dir, SnapshotEvery: 4}
	srvA, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := randomRows(21, 10, schema)
	if _, err := srvA.Warm(rows); err != nil {
		t.Fatal(err)
	}
	// kill -9: no Close. Snapshots happened at seq 4 and 8; the WAL holds
	// everything.
	srvB, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close() //rkvet:ignore dropperr test cleanup
	if srvB.Seq() != 10 || srvB.ctx.Len() != 6 {
		t.Fatalf("recovered seq=%d len=%d, want 10/6", srvB.Seq(), srvB.ctx.Len())
	}
	ref, err := NewWithRetention(schema, 1.0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Warm(rows); err != nil {
		t.Fatal(err)
	}
	assertSameKeys(t, srvB.ctx, ref.ctx, randomRows(22, 40, schema), 1.0)
	// Retention stays arrival-ordered post-recovery: further observations
	// evict the same rows on both servers.
	more := randomRows(23, 4, schema)
	if _, err := srvB.Warm(more); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Warm(more); err != nil {
		t.Fatal(err)
	}
	assertSameKeys(t, srvB.ctx, ref.ctx, randomRows(24, 40, schema), 1.0)
}

// A damaged snapshot must refuse to start, not silently serve a wrong
// context.
func TestRecoveryRefusesCorruptSnapshot(t *testing.T) {
	schema := robustSchema(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFileName), []byte(`{"version":2,"seq":`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewServer(Config{Schema: schema, Alpha: 1.0, StateDir: dir})
	if !errors.Is(err, persist.ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot accepted: %v", err)
	}
}

// Close snapshots the final state, so a clean shutdown recovers even with
// the WAL deleted out from under it.
func TestCloseSnapshotsFinalState(t *testing.T) {
	schema := robustSchema(t)
	dir := t.TempDir()
	srvA, err := NewServer(Config{Schema: schema, Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rows := randomRows(31, 7, schema)
	if _, err := srvA.Warm(rows); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, walFileName)); err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(Config{Schema: schema, Alpha: 1.0, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close() //rkvet:ignore dropperr test cleanup
	if srvB.ctx.Len() != 7 || srvB.Seq() != 7 {
		t.Fatalf("clean-shutdown recovery: len=%d seq=%d, want 7/7", srvB.ctx.Len(), srvB.Seq())
	}
}

// valuesOf renders an instance back to the wire format.
func valuesOf(s *feature.Schema, x feature.Instance) map[string]string {
	m := make(map[string]string, len(s.Attrs))
	for a, attr := range s.Attrs {
		m[attr.Name] = attr.Values[x[a]]
	}
	return m
}
