package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/feature"
)

// pint64 renders an optional response field for failure messages.
func pint64(p *int64) any {
	if p == nil {
		return "<nil>"
	}
	return *p
}

func newFollowerServer(t *testing.T, dir string) *Server {
	t.Helper()
	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0, Follower: true, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestFollowerRefusesObserveAndWarm(t *testing.T) {
	srv := newFollowerServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/observe", ObserveRequest{
		Values:     valuesOf(srv.schema, robustSeed()[0].X),
		Prediction: "Denied",
	})
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("/observe on a follower: %d, want 403", resp.StatusCode)
	}
	if _, err := srv.Warm(robustSeed()); err == nil {
		t.Fatal("Warm on a follower succeeded; replicas must only apply replicated rows")
	}
}

func TestApplyReplicatedOrdering(t *testing.T) {
	srv := newFollowerServer(t, "")
	seed := robustSeed()
	ctx := context.Background()

	if err := srv.ApplyReplicated(ctx, 1, seed[0]); err != nil {
		t.Fatal(err)
	}
	// A duplicate (reconnect overlap) is skipped without error or state change.
	if err := srv.ApplyReplicated(ctx, 1, seed[1]); err != nil {
		t.Fatalf("duplicate seq: %v, want silent skip", err)
	}
	if srv.ContextSize() != 1 || srv.Seq() != 1 {
		t.Fatalf("after dup: size=%d seq=%d, want 1/1", srv.ContextSize(), srv.Seq())
	}
	// A gap must be refused: applying it would silently lose records.
	if err := srv.ApplyReplicated(ctx, 3, seed[2]); !errors.Is(err, ErrReplicaGap) {
		t.Fatalf("gap seq: %v, want ErrReplicaGap", err)
	}
	if err := srv.ApplyReplicated(ctx, 2, seed[1]); err != nil {
		t.Fatal(err)
	}
	if srv.ContextSize() != 2 || srv.Seq() != 2 {
		t.Fatalf("size=%d seq=%d, want 2/2", srv.ContextSize(), srv.Seq())
	}
	// A primary refuses the replication entry points outright.
	prim, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.ApplyReplicated(ctx, 1, seed[0]); err == nil {
		t.Fatal("ApplyReplicated on a primary succeeded")
	}
}

func TestFollowerStalenessContract(t *testing.T) {
	srv := newFollowerServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()
	seed := robustSeed()

	// The primary advertises watermark 6 before any record arrives: the
	// follower is provably behind, so it was never synced (staleness -1).
	// Unbounded requests still answer; bounded requests shed.
	srv.ReplicaHeartbeat(6)
	for i, li := range seed[:3] {
		if err := srv.ApplyReplicated(ctx, uint64(i+1), li); err != nil {
			t.Fatal(err)
		}
	}
	row := map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}

	resp := postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved"})
	var er ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unbounded explain: %d, want 200", resp.StatusCode)
	}
	if er.ReplicaSeq == nil || *er.ReplicaSeq != 3 {
		t.Fatalf("replica_seq = %v, want 3", er.ReplicaSeq)
	}
	if er.StalenessMS == nil || *er.StalenessMS != -1 {
		t.Fatalf("staleness_ms = %v, want -1 (never synced)", pint64(er.StalenessMS))
	}

	resp = postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved", MaxStalenessMS: 60_000})
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("bounded explain before sync: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("stale shed carries no Retry-After")
	}

	// Catching up to the advertised watermark proves freshness; the bound
	// passes and the response carries the contract fields and headers.
	for i, li := range seed[3:] {
		if err := srv.ApplyReplicated(ctx, uint64(i+4), li); err != nil {
			t.Fatal(err)
		}
	}
	resp = postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved", MaxStalenessMS: 60_000})
	er = ExplainResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bounded explain after sync: %d, want 200", resp.StatusCode)
	}
	if er.StalenessMS == nil || *er.StalenessMS < 0 || *er.StalenessMS > 60_000 {
		t.Fatalf("staleness_ms = %v, want within the requested bound", pint64(er.StalenessMS))
	}
	if resp.Header.Get("X-RK-Replica-Seq") != "6" {
		t.Fatalf("X-RK-Replica-Seq = %q, want 6", resp.Header.Get("X-RK-Replica-Seq"))
	}

	// A bound the follower cannot meet sheds: a heartbeat far ahead of the
	// applied watermark keeps the staleness clock running.
	srv.ReplicaHeartbeat(100)
	time.Sleep(15 * time.Millisecond)
	resp = postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved", MaxStalenessMS: 1})
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body) //rkvet:ignore dropperr best-effort body read for the assertion message
	resp.Body.Close()            //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("explain beyond bound: %d (%s), want 503", resp.StatusCode, strings.TrimSpace(string(body[:n])))
	}
}

func TestPrimaryExplainCarriesNoReplicaFields(t *testing.T) {
	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	row := map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}
	// A primary is never stale: any bound is trivially met.
	resp := postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved", MaxStalenessMS: 1})
	var er ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary bounded explain: %d, want 200", resp.StatusCode)
	}
	if er.ReplicaSeq != nil || er.StalenessMS != nil {
		t.Fatalf("primary response carries replica fields: seq=%v staleness=%v", er.ReplicaSeq, er.StalenessMS)
	}
}

func TestInstallSnapshotSwapsAtomically(t *testing.T) {
	dir := t.TempDir()
	srv := newFollowerServer(t, dir)
	ctx := context.Background()
	seed := robustSeed()
	for i, li := range seed[:3] {
		if err := srv.ApplyReplicated(ctx, uint64(i+1), li); err != nil {
			t.Fatal(err)
		}
	}
	// Install replaces everything: rows, watermark, and the durable snapshot.
	if err := srv.InstallSnapshot(ctx, robustSchema(t), seed, 42); err != nil {
		t.Fatal(err)
	}
	if srv.ContextSize() != len(seed) || srv.Seq() != 42 {
		t.Fatalf("after install: size=%d seq=%d, want %d/42", srv.ContextSize(), srv.Seq(), len(seed))
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFileName)); err != nil {
		t.Fatalf("install did not persist the watermark snapshot: %v", err)
	}
	// A follower crash now resumes from the installed watermark.
	srv2 := newFollowerServer(t, dir)
	if srv2.ContextSize() != len(seed) || srv2.Seq() != 42 {
		t.Fatalf("restart after install: size=%d seq=%d, want %d/42", srv2.ContextSize(), srv2.Seq(), len(seed))
	}
	// A snapshot under a different schema must be refused with the state
	// untouched: silently mixing arities would corrupt every later key.
	bad := feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
	}, []string{"Denied", "Approved"})
	if err := srv.InstallSnapshot(ctx, bad, nil, 50); err == nil {
		t.Fatal("InstallSnapshot accepted a mismatched schema")
	}
	if srv.ContextSize() != len(seed) || srv.Seq() != 42 {
		t.Fatalf("failed install mutated state: size=%d seq=%d, want %d/42", srv.ContextSize(), srv.Seq(), len(seed))
	}
}

// TestInstallSnapshotInvalidatesExplainCache pins the cache-version contract
// across snapshot catch-up: InstallSnapshot swaps in a fresh context whose
// Version() restarts at zero, so without a monotonic base on the Server a
// cached pre-snapshot entry would collide with a post-snapshot key carrying
// the same version number and be served for different context content.
func TestInstallSnapshotInvalidatesExplainCache(t *testing.T) {
	srv := newFollowerServer(t, "") // cache is on by default
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()
	seed := robustSeed()

	// Three applied rows put the context at version 3; the explain below is
	// cached under that version.
	for i, li := range seed[:3] {
		if err := srv.ApplyReplicated(ctx, uint64(i+1), li); err != nil {
			t.Fatal(err)
		}
	}
	row := map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}
	resp := postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved"})
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-install explain: %d, want 200", resp.StatusCode)
	}

	// Install a snapshot of three DIFFERENT rows: the fresh context's version
	// is again 3, the exact collision the version base must prevent.
	if err := srv.InstallSnapshot(ctx, robustSchema(t), seed[3:], 42); err != nil {
		t.Fatal(err)
	}

	resp = postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved"})
	var cached ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&cached); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if src := resp.Header.Get("X-RK-Cache"); src == "hit" {
		t.Fatal("post-install explain served a pre-snapshot cache entry")
	}
	// The served answer must equal a cache-bypassed solve against the
	// installed rows in every explanation field.
	resp = postJSON(t, ts.URL+"/explain", ExplainRequest{Values: row, Prediction: "Approved", NoCache: true})
	var fresh ExplainResponse
	if err := json.NewDecoder(resp.Body).Decode(&fresh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //rkvet:ignore dropperr test response close
	if cached.Rule != fresh.Rule || cached.Precision != fresh.Precision ||
		cached.Coverage != fresh.Coverage || cached.Context != fresh.Context { //rkvet:ignore floateq byte-identical responses share exact float values
		t.Fatalf("post-install cached response diverges from bypass: %+v vs %+v", cached, fresh)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	schema := robustSchema(t)
	srv, err := NewServer(Config{
		Schema: schema, Alpha: 1.0, StateDir: dir,
		SnapshotEvery: 4, CompactWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := randomRows(7, 10, schema)
	if _, err := srv.Warm(rows); err != nil {
		t.Fatal(err)
	}
	// 10 observations with a snapshot (and truncate) every 4: the base must
	// have advanced to the last snapshot's watermark.
	if base := srv.WALBase(); base != 8 {
		t.Fatalf("wal base = %d, want 8 (last compaction point)", base)
	}
	st, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	// Only records 9 and 10 remain in the log.
	if st.Size() <= 0 {
		t.Fatal("log empty: records past the snapshot must remain")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery across compaction: snapshot + remaining tail reproduce all 10.
	srv2, err := NewServer(Config{
		Schema: schema, Alpha: 1.0, StateDir: dir,
		SnapshotEvery: 4, CompactWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close() //rkvet:ignore dropperr test cleanup
	if srv2.ContextSize() != 10 || srv2.Seq() != 10 {
		t.Fatalf("recovered size=%d seq=%d, want 10/10", srv2.ContextSize(), srv2.Seq())
	}
	if base := srv2.WALBase(); base < 8 {
		t.Fatalf("recovered wal base = %d, want ≥ 8 (compaction must survive restart)", base)
	}
}
