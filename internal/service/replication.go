package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/persist"
)

// The follower-side Server surface (DESIGN.md §14). The replica package
// drives these through a structural interface, so service never imports
// replica: a follower's rows arrive via ApplyReplicated (the streamed WAL
// tail) and InstallSnapshot (catch-up after a lost tail), heartbeats advance
// the staleness clock, and the epoch pins which primary life the state
// mirrors.

// ErrReplicaGap reports a streamed record that does not directly follow the
// follower's applied watermark: records were lost between hub and follower,
// and the stream must be re-established from the watermark.
var ErrReplicaGap = errors.New("service: replicated record out of order")

// errNotFollower guards the replication entry points on a primary.
var errNotFollower = errors.New("service: not a follower (start with Config.Follower)")

// ApplyReplicated applies one streamed observation to a follower. Records at
// or below the applied watermark are duplicates from a reconnect overlap and
// are skipped; a record past watermark+1 is a gap (ErrReplicaGap) the caller
// resolves by reconnecting from the watermark. The follower snapshots on the
// same cadence as a primary — those periodic atomic snapshots, carrying the
// seq watermark, are its only durable state.
func (s *Server) ApplyReplicated(ctx context.Context, seq uint64, li feature.Labeled) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.follower {
		return errNotFollower
	}
	if s.closed {
		return errDraining
	}
	if seq <= s.seq {
		return nil
	}
	if seq != s.seq+1 {
		return fmt.Errorf("%w: got seq %d with watermark %d", ErrReplicaGap, seq, s.seq)
	}
	slot, err := s.admitLocked(ctx, li)
	if err != nil {
		return err
	}
	s.seq = seq
	s.commitLocked(slot)
	s.markSyncedLocked()
	s.sinceSnapshot++
	if s.snapPath != "" && s.sinceSnapshot >= s.snapshotEvery {
		s.sinceSnapshot = 0
		if err := s.snapshotLocked(); err != nil {
			// Non-fatal: the follower re-syncs a longer tail after a crash.
			s.snapFailures.Add(1)
			snapshotFailures.Inc()
			s.logger.Warn("follower snapshot failed", "err", err)
		}
	}
	return nil
}

// InstallSnapshot replaces the follower's entire context with a snapshot
// fetched from the primary — the catch-up path when the WAL tail is gone
// (primary restarted, or the follower lagged past compaction). The swap is
// atomic: nothing is mutated until every row has been admitted into a fresh
// context, so a mid-install failure leaves the previous state serving.
func (s *Server) InstallSnapshot(ctx context.Context, schema *feature.Schema, items []feature.Labeled, seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.follower {
		return errNotFollower
	}
	if s.closed {
		return errDraining
	}
	if schema.NumFeatures() != s.schema.NumFeatures() || len(schema.Labels) != len(s.schema.Labels) {
		return fmt.Errorf("service: snapshot schema (%d attrs, %d labels) does not match the replica schema", schema.NumFeatures(), len(schema.Labels))
	}
	nctx, err := core.NewContextSized(s.schema, nil, s.retain)
	if err != nil {
		return err
	}
	order := make([]int, 0, len(items))
	for _, li := range items {
		slot, aerr := nctx.AddSlot(li)
		if aerr != nil {
			return fmt.Errorf("service: snapshot install: %w", aerr)
		}
		order = append(order, slot)
	}
	if s.monitor != nil {
		// The drift panel is a statistic of the stream, not ground truth:
		// feed it the snapshot rows so drift estimates keep their history,
		// but a monitor hiccup must not abort catch-up.
		for _, li := range items {
			if _, merr := s.monitor.ObserveCtx(ctx, li); merr != nil {
				s.logger.Warn("monitor skipped a snapshot row during catch-up", "err", merr)
				break
			}
		}
	}
	// The fresh context's Version() restarts at zero; advance the base past
	// every version the old context used so cache keys stay monotonic and a
	// pre-snapshot entry can never be served for post-snapshot content
	// (mirrors cce.Window.Reset's ctxVersionBase bump).
	s.ctxVersionBase += s.ctx.Version() + 1
	s.ctx = nctx
	s.order, s.orderHead = order, 0
	if s.retain > 0 {
		for s.ctx.Len() > s.retain {
			if rerr := s.ctx.Remove(s.order[s.orderHead]); rerr != nil {
				panic(fmt.Sprintf("service: retention eviction: %v", rerr))
			}
			s.orderHead++
		}
	}
	s.seq = seq
	s.sinceSnapshot = 0
	s.markSyncedLocked()
	if err := s.snapshotLocked(); err != nil {
		// The watermark is not yet durable; a crash before the next periodic
		// snapshot re-fetches the primary snapshot, which is correct if slow.
		s.snapFailures.Add(1)
		snapshotFailures.Inc()
		s.logger.Warn("persisting installed snapshot failed", "err", err)
	}
	return nil
}

// ReplicaHeartbeat records the primary's latest sequence number, carried on
// every heartbeat and handshake line. When the follower's applied watermark
// has reached it, the follower is provably caught up and the staleness clock
// resets to now.
func (s *Server) ReplicaHeartbeat(primarySeq uint64) {
	for {
		cur := s.primarySeq.Load()
		if primarySeq <= cur || s.primarySeq.CompareAndSwap(cur, primarySeq) {
			break
		}
	}
	if s.Seq() >= s.primarySeq.Load() {
		s.lastSync.Store(time.Now().UnixNano())
	}
}

// markSyncedLocked resets the staleness clock when the applied watermark has
// reached the primary's advertised seq. Callers hold s.mu.
func (s *Server) markSyncedLocked() {
	if s.seq >= s.primarySeq.Load() {
		s.lastSync.Store(time.Now().UnixNano())
	}
}

// StalenessMS reports how many milliseconds ago the follower was provably
// caught up with its primary; -1 before the first sync. A primary reports 0:
// it is never stale.
func (s *Server) StalenessMS() int64 {
	if !s.follower {
		return 0
	}
	t := s.lastSync.Load()
	if t == 0 {
		return -1
	}
	return time.Since(time.Unix(0, t)).Milliseconds()
}

// ReplicaLagSeconds is StalenessMS for gauges: seconds, -1 before first sync.
func (s *Server) ReplicaLagSeconds() float64 {
	ms := s.StalenessMS()
	if ms < 0 {
		return -1
	}
	return float64(ms) / 1e3
}

// lagEntriesLocked counts observations the primary has durably logged that
// this follower has not yet applied. Callers hold s.mu (read or write).
func (s *Server) lagEntriesLocked() int64 {
	if p := s.primarySeq.Load(); p > s.seq {
		return int64(p - s.seq)
	}
	return 0
}

// ReplicaLagEntries is lagEntriesLocked for gauges.
func (s *Server) ReplicaLagEntries() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lagEntriesLocked()
}

// SetReplicaEpoch pins the primary boot identity this follower's state
// mirrors. The follower calls it after epoch-changing catch-up; streams from
// any other epoch are fenced off.
func (s *Server) SetReplicaEpoch(epoch string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch = epoch
}

// Epoch reports the primary boot identity: the server's own on a primary,
// the last installed primary epoch on a follower ("" before first contact).
func (s *Server) Epoch() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// roleLocked names the server's replication role. Callers hold s.mu; the
// field is immutable, the convention is for call-site symmetry.
func (s *Server) roleLocked() string {
	if s.follower {
		return "follower"
	}
	return "primary"
}

// Role reports "primary" or "follower".
func (s *Server) Role() string { return s.roleLocked() }

// WALBase reports the highest sequence number NOT present in the primary's
// log: /replicate requests from at or below it must catch up from a snapshot.
func (s *Server) WALBase() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walBase
}

// WALPath reports the primary's on-disk observation log ("" when persistence
// is off or the server is a follower) — the file the replication hub streams
// history from.
func (s *Server) WALPath() string { return s.walPath }

// WriteSnapshotTo streams the current rows and watermark in the snapshot
// encoding — the payload of the primary's /snapshot catch-up endpoint,
// bit-compatible with an on-disk snapshot.
func (s *Server) WriteSnapshotTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return persist.EncodeSnapshot(w, s.schema, s.itemsLocked(), s.seq)
}
