package service

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/xai-db/relativekeys/internal/feature"
)

func retentionServer(t *testing.T, panel, retain int) (*Server, *Client) {
	t.Helper()
	schema := feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
		{Name: "Area", Values: []string{"Urban", "Rural"}},
	}, []string{"Denied", "Approved"})
	srv, err := NewWithRetention(schema, 1.0, panel, retain)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func TestRetentionBoundsContext(t *testing.T) {
	srv, client := retentionServer(t, 0, 5)
	rows := []struct{ income, credit, area, pred string }{
		{"1-2K", "poor", "Urban", "Denied"},
		{"3-4K", "poor", "Urban", "Denied"},
		{"5-6K", "poor", "Urban", "Approved"},
		{"3-4K", "good", "Rural", "Approved"},
		{"1-2K", "good", "Urban", "Denied"},
		{"5-6K", "good", "Rural", "Approved"},
		{"3-4K", "poor", "Rural", "Denied"},
		{"5-6K", "poor", "Rural", "Approved"},
	}
	for i, r := range rows {
		if err := client.Observe(map[string]string{
			"Income": r.income, "Credit": r.credit, "Area": r.area,
		}, r.pred); err != nil {
			t.Fatal(err)
		}
		want := i + 1
		if want > 5 {
			want = 5
		}
		if got := srv.ctx.Len(); got != want {
			t.Fatalf("after %d observes: context %d, want %d", i+1, got, want)
		}
	}
	// The physical index must not outgrow the retention bound: admission
	// precedes eviction (so a monitor failure can roll back cleanly), which
	// allows at most one transient extra slot.
	if got := srv.ctx.NumSlots(); got > 6 {
		t.Fatalf("NumSlots = %d, want ≤ retain+1 (slots must recycle)", got)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ContextSize != 5 || stats.Retention != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	// Explaining still works against the bounded context.
	if _, err := client.Explain(map[string]string{
		"Income": "5-6K", "Credit": "poor", "Area": "Rural",
	}, "Approved", 0); err != nil {
		t.Fatal(err)
	}
	// Retention evicts oldest-first: the first observed row is gone, so the
	// live rows are exactly rows[3:].
	liveItems := srv.ctx.LiveItems()
	if len(liveItems) != 5 {
		t.Fatalf("LiveItems = %d, want 5", len(liveItems))
	}
	if _, err := NewWithRetention(srv.schema, 1.0, 0, -1); err == nil {
		t.Fatal("negative retention accepted")
	}
}

func TestRetentionWarm(t *testing.T) {
	srv, _ := retentionServer(t, 0, 3)
	items := []feature.Labeled{
		{X: feature.Instance{0, 0, 0}, Y: 0},
		{X: feature.Instance{1, 1, 1}, Y: 1},
		{X: feature.Instance{2, 0, 1}, Y: 1},
		{X: feature.Instance{0, 1, 0}, Y: 0},
	}
	n, err := srv.Warm(items)
	if err != nil || n != 4 {
		t.Fatalf("Warm = %d, %v", n, err)
	}
	if srv.ctx.Len() != 3 {
		t.Fatalf("context %d after warm, want 3", srv.ctx.Len())
	}
}

// failingMonitor rejects every observation after the first `allow`.
type failingMonitor struct {
	allow    int
	arrivals int
}

func (m *failingMonitor) ObserveCtx(context.Context, feature.Labeled) (int, error) {
	if m.arrivals >= m.allow {
		return 0, errors.New("monitor: induced failure")
	}
	m.arrivals++
	return 0, nil
}
func (m *failingMonitor) AvgSuccinctness() float64 { return 0 }
func (m *failingMonitor) Arrivals() int            { return m.arrivals }

// TestObserveAtomicRollback: when the drift monitor rejects an instance the
// context add must be rolled back, so the state the client sees is as if the
// request never happened — a retry cannot duplicate the row.
func TestObserveAtomicRollback(t *testing.T) {
	srv, client := retentionServer(t, 0, 0)
	srv.monitor = &failingMonitor{allow: 2}

	row := map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}
	for i := 0; i < 2; i++ {
		if err := client.Observe(row, "Denied"); err != nil {
			t.Fatal(err)
		}
	}
	if srv.ctx.Len() != 2 {
		t.Fatalf("context %d before failure, want 2", srv.ctx.Len())
	}
	// Monitor now fails: the observe must 500 AND leave the context as-is.
	err := client.Observe(row, "Denied")
	if err == nil {
		t.Fatal("failing monitor not surfaced")
	}
	if !strings.Contains(err.Error(), "500") {
		t.Fatalf("want 500 error, got %v", err)
	}
	if srv.ctx.Len() != 2 {
		t.Fatalf("context %d after failed observe, want 2 (rollback)", srv.ctx.Len())
	}
	// A later successful path (monitor swapped out) reuses the rolled-back
	// slot rather than leaking it.
	srv.monitor = nil
	if err := client.Observe(row, "Denied"); err != nil {
		t.Fatal(err)
	}
	if srv.ctx.Len() != 3 || srv.ctx.NumSlots() != 3 {
		t.Fatalf("context Len=%d NumSlots=%d after retry, want 3/3", srv.ctx.Len(), srv.ctx.NumSlots())
	}
}

// TestServiceConcurrentHeavy hammers /observe, /explain and /stats in
// parallel — including a retention-bounded server whose observes remove rows
// — and is intended to run under -race: it proves the in-place context
// mutation keeps readers and writers serialized by the server lock.
func TestServiceConcurrentHeavy(t *testing.T) {
	for _, retain := range []int{0, 8} {
		t.Run(fmt.Sprintf("retain=%d", retain), func(t *testing.T) {
			_, client := retentionServer(t, 3, retain)
			// Seed so explains have a context.
			seed := []struct{ income, credit, area, pred string }{
				{"3-4K", "poor", "Urban", "Denied"},
				{"5-6K", "good", "Rural", "Approved"},
				{"1-2K", "poor", "Urban", "Denied"},
				{"5-6K", "poor", "Urban", "Approved"},
			}
			for _, r := range seed {
				if err := client.Observe(map[string]string{
					"Income": r.income, "Credit": r.credit, "Area": r.area,
				}, r.pred); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, 96)
			for i := 0; i < 32; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					switch i % 3 {
					case 0:
						errs <- client.Observe(map[string]string{
							"Income": "3-4K", "Credit": "good", "Area": "Rural",
						}, "Approved")
					case 1:
						_, err := client.Explain(map[string]string{
							"Income": "3-4K", "Credit": "poor", "Area": "Urban",
						}, "Denied", 0)
						errs <- err
					default:
						_, err := client.Stats()
						errs <- err
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
