package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/faultinject"
	"github.com/xai-db/relativekeys/internal/feature"
)

func robustSchema(t *testing.T) *feature.Schema {
	t.Helper()
	return feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
		{Name: "Area", Values: []string{"Urban", "Rural"}},
	}, []string{"Denied", "Approved"})
}

func robustSeed() []feature.Labeled {
	return []feature.Labeled{
		{X: feature.Instance{0, 0, 0}, Y: 0},
		{X: feature.Instance{1, 0, 0}, Y: 0},
		{X: feature.Instance{2, 0, 0}, Y: 1},
		{X: feature.Instance{1, 1, 1}, Y: 1},
		{X: feature.Instance{0, 1, 0}, Y: 0},
		{X: feature.Instance{2, 1, 1}, Y: 1},
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// keyFromFeatures maps response feature names back to attribute indices so
// the test can verify conformance against the server's own context.
func keyFromFeatures(t *testing.T, schema *feature.Schema, names []string) core.Key {
	t.Helper()
	var key core.Key
	for _, name := range names {
		found := -1
		for a, attr := range schema.Attrs {
			if attr.Name == name {
				found = a
				break
			}
		}
		if found < 0 {
			t.Fatalf("response names unknown attribute %q", name)
		}
		key = append(key, found)
	}
	return key
}

// The acceptance test for graceful degradation: a solver stalled far past
// the request deadline must still answer 200 with a valid (violations ≤
// budget) key marked degraded — never an error, never a hang.
func TestExplainDeadlineDegrades(t *testing.T) {
	schema := robustSchema(t)
	srv, err := NewServer(Config{
		Schema: schema,
		Alpha:  1.0,
		Solve: SolveFunc(faultinject.WrapSolve(core.SRKAnytime, faultinject.New(1), faultinject.SolveFaults{
			LatencyProb: 1,
			Latency:     time.Hour,
		})),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	row := map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"}
	done := make(chan *ExplainResponse, 1)
	go func() {
		c := NewClient(ts.URL)
		resp, err := c.ExplainDeadline(row, "Approved", 0, 30*time.Millisecond)
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- resp
	}()
	var resp *ExplainResponse
	select {
	case resp = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadline explain hung")
	}
	if resp == nil {
		t.FailNow()
	}
	if !resp.Degraded {
		t.Fatal("hour-long stall under a 30ms deadline must degrade")
	}
	li, err := srv.decode(row, "Approved")
	if err != nil {
		t.Fatal(err)
	}
	key := keyFromFeatures(t, schema, resp.Features)
	if !core.IsAlphaKey(srv.ctx, li.X, li.Y, key, 1.0) {
		t.Fatalf("degraded key %v is not α-conformant", key)
	}
	stats, err := NewClient(ts.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DegradedTotal == 0 {
		t.Fatal("degraded explain not counted in stats")
	}
}

// Deadlines below the configured floor shed immediately with 503 and a
// Retry-After hint rather than producing a useless everything-key.
func TestDeadlineFloorSheds(t *testing.T) {
	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0, MinDeadline: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Values:     map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"},
		Prediction: "Approved",
		DeadlineMS: 10,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// At or above the floor the request goes through.
	ok := postJSON(t, ts.URL+"/explain", ExplainRequest{
		Values:     map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"},
		Prediction: "Approved",
		DeadlineMS: 60,
	})
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("above-floor status %d, want 200", ok.StatusCode)
	}
}

// With the in-flight bound saturated by a deliberately stalled solve, the
// next explain is shed with 429 instead of queueing behind it.
func TestLoadShedding(t *testing.T) {
	schema := robustSchema(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := NewServer(Config{
		Schema:      schema,
		Alpha:       1.0,
		MaxInFlight: 1,
		Solve: func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
			entered <- struct{}{}
			<-release
			return core.SRKAnytime(ctx, c, x, y, alpha)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	req := ExplainRequest{
		Values:     map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"},
		Prediction: "Approved",
	}
	first := make(chan int, 1)
	go func() {
		resp := postJSON(t, ts.URL+"/explain", req)
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-entered // the slot is now held mid-solve
	shed := postJSON(t, ts.URL+"/explain", req)
	defer shed.Body.Close()
	if shed.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated explain got %d, want 429", shed.StatusCode)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held explain finished with %d, want 200", code)
	}
	stats, err := NewClient(ts.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShedTotal != 1 {
		t.Fatalf("shed_total = %d, want 1", stats.ShedTotal)
	}
}

// A panicking solver must cost exactly one 500, not the process: later
// requests on the same server keep working.
func TestPanicRecovery(t *testing.T) {
	schema := robustSchema(t)
	var arm bool
	srv, err := NewServer(Config{
		Schema: schema,
		Alpha:  1.0,
		Solve: func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
			if arm {
				panic("poisoned request")
			}
			return core.SRKAnytime(ctx, c, x, y, alpha)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	req := ExplainRequest{
		Values:     map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"},
		Prediction: "Approved",
	}
	arm = true
	resp := postJSON(t, ts.URL+"/explain", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", resp.StatusCode)
	}
	arm = false
	again := postJSON(t, ts.URL+"/explain", req)
	defer again.Body.Close()
	if again.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d", again.StatusCode)
	}
	stats, err := NewClient(ts.URL).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", stats.PanicsRecovered)
	}
}

// After Close the server drains: both mutating and solving endpoints answer
// 503 so a load balancer fails over cleanly.
func TestClosedServerAnswers503(t *testing.T) {
	srv, err := NewServer(Config{Schema: robustSchema(t), Alpha: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Warm(robustSeed()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	for _, path := range []string{"/observe", "/explain"} {
		resp := postJSON(t, ts.URL+path, ExplainRequest{
			Values:     map[string]string{"Income": "5-6K", "Credit": "good", "Area": "Rural"},
			Prediction: "Approved",
		})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on closed server: %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s 503 without Retry-After", path)
		}
		body := make([]byte, 256)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if !strings.Contains(string(body[:n]), "shutting down") {
			t.Fatalf("%s: unhelpful drain message %q", path, body[:n])
		}
	}
}
