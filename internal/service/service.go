// Package service exposes CCE as an HTTP service, matching the paper's
// deployment picture (§6): it sits at the client side of a (possibly remote)
// ML model, accumulates the (instance, prediction) pairs observed during
// serving via /observe, and answers /explain with relative keys — never
// contacting the model. Instances travel as attribute-value string maps so
// clients need no knowledge of internal value codes.
//
// The server is deadline-aware and crash-safe (DESIGN.md §9): explains carry
// per-request deadlines and degrade to a valid-but-larger key instead of
// erroring when time runs out; observations stream to an append-only log and
// periodic atomic snapshots so a kill -9 loses at most the unsynced tail.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/xai-db/relativekeys/internal/cce"
	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/feature"
	"github.com/xai-db/relativekeys/internal/obs"
	"github.com/xai-db/relativekeys/internal/persist"
)

// DriftObserver is the slice of cce.DriftMonitor the server depends on; a
// seam so tests and the fault-injection harness can interpose failing or
// slow monitors when exercising the observe rollback path.
type DriftObserver interface {
	ObserveCtx(ctx context.Context, li feature.Labeled) (int, error)
	AvgSuccinctness() float64
	Arrivals() int
}

// SolveFunc is the anytime solver seam, matching core.SRKAnytime: it returns
// the key, whether the deadline degraded it, and an error.
type SolveFunc func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error)

// Config assembles a Server. Zero values mean "off" for every robustness
// knob, so Config{Schema: s, Alpha: a} behaves like the pre-robustness
// server.
type Config struct {
	Schema    *feature.Schema
	Alpha     float64
	PanelSize int // drift-monitor panel; 0 = no monitor
	Retain    int // max live context rows; 0 = grow forever

	Monitor DriftObserver // overrides PanelSize construction when non-nil
	// Solve overrides the explain solver. nil = core.SRKAnytimePar at
	// Parallelism workers — the lazy-greedy engine (DESIGN.md §12), which
	// returns byte-identical keys to the eager reference at a fraction of
	// the candidate evaluations. Set it to core.SRKAnytime to force the
	// eager path (cceserver's -solver=eager does exactly that).
	Solve SolveFunc

	// Parallelism bounds the intra-solve worker count of each explain
	// (DESIGN.md §11): above 1, the lazy engine's full candidate scans are
	// striped across that many workers once the context reaches
	// core.MinParallelRows rows, with byte-identical keys. 0 or 1 keeps
	// solves sequential. Ignored when Solve is set.
	Parallelism int

	DefaultDeadline time.Duration // per-explain solve budget; 0 = none
	MinDeadline     time.Duration // floor: shorter requests shed with 503
	MaxInFlight     int           // concurrent explains; 0 = unbounded

	// Explanation cache + request coalescing (DESIGN.md §15). The cache
	// memoizes rendered explain responses under the canonical (context
	// version, solver config, alpha, instance) key; concurrent identical
	// misses coalesce onto one solve. CacheOff disables both. CacheEntries
	// and CacheBytes bound the cache (0 = defaults: 8192 entries, 32 MiB).
	// SolverTag fingerprints the solver configuration inside cache keys; ""
	// derives one from Solve/Parallelism. Two servers sharing persisted state
	// but configured with different solvers must carry different tags.
	CacheOff     bool
	CacheEntries int
	CacheBytes   int64
	SolverTag    string

	// Async ExplainAll jobs (DESIGN.md §15). MaxJobItems caps one batch
	// (0 = 100000); JobsKept bounds finished jobs retained for polling
	// (0 = 64). With StateDir set, job specs and per-item results persist
	// under <StateDir>/jobs and incomplete jobs resume after a restart.
	MaxJobItems int
	JobsKept    int

	StateDir      string       // "" = no persistence
	WAL           *persist.WAL // overrides the StateDir log (fault-injection seam)
	SnapshotEvery int          // observations per snapshot; 0 = 256
	WALSyncEvery  int          // appends per fsync; 0 = 1 (sync every append)

	// Replication (DESIGN.md §14). Follower turns the server into a read
	// replica: /observe answers 403, rows arrive only via ApplyReplicated /
	// InstallSnapshot, and /explain honours the request's max_staleness_ms
	// bound. Epoch is the primary boot identity served to followers so a
	// restarted primary fences streams from its previous life. OnReplicate,
	// set on a primary, is called under the state lock after each observation
	// is durable — the replication hub's publish hook. CompactWAL truncates
	// the log after each successful snapshot (followers lagging past the
	// truncation point fall back to snapshot catch-up).
	Follower    bool
	Epoch       string
	OnReplicate func(seq uint64, li feature.Labeled)
	CompactWAL  bool

	Tracer *obs.Tracer // nil = no request sampling
	Logger *obs.Logger // nil = silent
}

const (
	defaultSnapshotEvery = 256
	snapshotFileName     = "context.snap"
	walFileName          = "observations.wal"
)

// Server is an HTTP CCE endpoint over a fixed schema. It is safe for
// concurrent use.
type Server struct {
	schema          *feature.Schema
	alpha           float64
	retain          int // max live context rows; 0 = grow forever
	parallelism     int // intra-solve workers per explain; ≤1 = sequential
	solve           SolveFunc
	defaultDeadline time.Duration
	minDeadline     time.Duration
	snapshotEvery   int
	walSyncEvery    int
	snapPath        string        // "" = snapshots off
	sem             chan struct{} // nil = unbounded explains

	// Explanation cache + coalescing (DESIGN.md §15); immutable after
	// construction. cache nil = caching and coalescing off.
	cache     *explainCache
	flights   *flightGroup
	solverTag string

	jobs *jobStore // nil = jobs disabled (never in practice; see NewServer)

	mu      sync.RWMutex
	ctx     *core.Context // guarded by mu
	monitor DriftObserver // guarded by mu

	// ctxVersionBase keeps the cache-key version monotonic across context
	// swaps (InstallSnapshot replaces s.ctx with a fresh context whose
	// Version() restarts at zero), mirroring cce.Window.ctxVersionBase: a
	// pre-swap cache entry must never collide with a post-swap version.
	ctxVersionBase uint64 // guarded by mu

	// order tracks live context slots oldest-first when retention is on.
	order     []int // guarded by mu
	orderHead int   // guarded by mu

	wal           *persist.WAL // guarded by mu; nil = no observation log
	seq           uint64       // guarded by mu; last durable observation number
	sinceSnapshot int          // guarded by mu
	sinceSync     int          // guarded by mu
	closed        bool         // guarded by mu; true once Close began

	// Replication state (DESIGN.md §14).
	follower    bool
	compactWAL  bool
	walPath     string                               // "" = no on-disk log
	epoch       string                               // guarded by mu; primary boot identity
	walBase     uint64                               // guarded by mu; highest seq NOT in the log (compaction watermark)
	onReplicate func(seq uint64, li feature.Labeled) // called under mu after each durable observe
	primarySeq  atomic.Uint64                        // follower: latest seq the primary has advertised
	lastSync    atomic.Int64                         // follower: unix nanos of the last provably caught-up moment; 0 = never

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheCoalesced atomic.Int64
	cacheBypassed  atomic.Int64

	degradedTotal   atomic.Int64
	shedTotal       atomic.Int64
	panicsRecovered atomic.Int64
	syncFailures    atomic.Int64
	snapFailures    atomic.Int64

	// Observation rollbacks: the context add was undone after a downstream
	// stage refused the row (monitor rejection, WAL append failure), so the
	// client's retry is safe. Surfaced in /healthz and as obs counters.
	monitorRollbacks atomic.Int64
	walRollbacks     atomic.Int64

	tracer *obs.Tracer // nil = no sampling
	logger *obs.Logger // nil = silent
	start  time.Time
}

// New builds a server with an empty, unbounded context.
func New(schema *feature.Schema, alpha float64, panelSize int) (*Server, error) {
	return NewServer(Config{Schema: schema, Alpha: alpha, PanelSize: panelSize})
}

// NewWithRetention builds a server whose context keeps only the most recent
// `retain` observations (0 = unbounded): once full, each /observe retires
// the oldest row in place, so a long-running service holds steady memory and
// explains against the freshest inference behaviour instead of the entire
// history. retain must be 0 or positive.
func NewWithRetention(schema *feature.Schema, alpha float64, panelSize, retain int) (*Server, error) {
	return NewServer(Config{Schema: schema, Alpha: alpha, PanelSize: panelSize, Retain: retain})
}

// NewServer builds a server from cfg, recovering persisted state when
// cfg.StateDir holds a snapshot or observation log from a previous run. A
// corrupt snapshot is refused (the operator must move it aside), while a torn
// log tail — the kill -9 signature — is dropped silently per the recovery
// protocol.
func NewServer(cfg Config) (*Server, error) {
	if err := core.ValidateAlpha(cfg.Alpha); err != nil {
		return nil, err
	}
	if cfg.Retain < 0 {
		return nil, fmt.Errorf("service: retention %d must be ≥ 0", cfg.Retain)
	}
	ctx, err := core.NewContextSized(cfg.Schema, nil, cfg.Retain)
	if err != nil {
		return nil, err
	}
	s := &Server{
		schema:          cfg.Schema,
		alpha:           cfg.Alpha,
		retain:          cfg.Retain,
		parallelism:     cfg.Parallelism,
		solve:           cfg.Solve,
		defaultDeadline: cfg.DefaultDeadline,
		minDeadline:     cfg.MinDeadline,
		snapshotEvery:   cfg.SnapshotEvery,
		walSyncEvery:    cfg.WALSyncEvery,
		ctx:             ctx,
		follower:        cfg.Follower,
		compactWAL:      cfg.CompactWAL,
		epoch:           cfg.Epoch,
		onReplicate:     cfg.OnReplicate,
		tracer:          cfg.Tracer,
		logger:          cfg.Logger,
		start:           time.Now(),
	}
	s.solverTag = cfg.SolverTag
	if s.solve == nil {
		par := s.parallelism
		s.solve = func(ctx context.Context, c *core.Context, x feature.Instance, y feature.Label, alpha float64) (core.Key, bool, error) {
			return core.SRKAnytimePar(ctx, c, x, y, alpha, par)
		}
		if s.solverTag == "" {
			s.solverTag = fmt.Sprintf("lazy/p=%d", s.parallelism)
		}
	}
	if s.solverTag == "" {
		// An injected solver with no declared tag: fingerprint it as custom so
		// it never shares entries with the stock engines.
		s.solverTag = "custom"
	}
	if !cfg.CacheOff {
		s.cache = newExplainCache(cfg.CacheEntries, cfg.CacheBytes)
		s.flights = newFlightGroup()
	}
	if s.snapshotEvery <= 0 {
		s.snapshotEvery = defaultSnapshotEvery
	}
	if s.walSyncEvery <= 0 {
		s.walSyncEvery = 1
	}
	if cfg.MaxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	s.monitor = cfg.Monitor
	if s.monitor == nil && cfg.PanelSize > 0 {
		mon, err := cce.NewDriftMonitor(cfg.Schema, cfg.Alpha, cfg.PanelSize, 1)
		if err != nil {
			return nil, err
		}
		s.monitor = mon
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, err
		}
		s.snapPath = filepath.Join(cfg.StateDir, snapshotFileName)
		if !s.follower {
			s.walPath = filepath.Join(cfg.StateDir, walFileName)
		}
		if err := s.recoverLocked(s.walPath); err != nil {
			return nil, err
		}
		// A follower writes no log of its own: the primary's WAL is the log,
		// and the follower's periodic snapshots (rows + seq watermark in one
		// atomic file) are its durable resume point.
		if cfg.WAL == nil && !s.follower {
			w, err := persist.OpenWAL(s.walPath)
			if err != nil {
				return nil, err
			}
			s.wal = w
		}
	}
	if cfg.WAL != nil {
		s.wal = cfg.WAL
	}
	// The job store comes up last: resuming an unfinished batch starts the
	// runner, which solves against the context recovered above.
	jobsDir := ""
	if cfg.StateDir != "" {
		jobsDir = filepath.Join(cfg.StateDir, "jobs")
	}
	jobs, err := newJobStore(s, jobsDir, cfg.MaxJobItems, cfg.JobsKept)
	if err != nil {
		return nil, err
	}
	s.jobs = jobs
	return s, nil
}

// recoverLocked rebuilds the context from the snapshot plus the observation
// log: snapshot rows are re-admitted in arrival order, then log records with
// a sequence number past the snapshot watermark are replayed. The drift
// monitor is rebuilt from the recovered rows rather than persisted — its
// panel is a statistic of the stream, not ground truth. Called from
// NewServer before the server is shared, hence no locking.
func (s *Server) recoverLocked(walPath string) error {
	schema, items, seq, err := persist.LoadSnapshot(s.snapPath)
	switch {
	case err == nil:
		if schema.NumFeatures() != s.schema.NumFeatures() || len(schema.Labels) != len(s.schema.Labels) {
			return fmt.Errorf("service: snapshot schema (%d attrs, %d labels) does not match the configured schema", schema.NumFeatures(), len(schema.Labels))
		}
		s.seq = seq
		for _, li := range items {
			//rkvet:ignore ctxflow snapshot replay runs inside NewServer before any request exists; recovery must complete, not degrade to a partial context
			slot, err := s.admitLocked(context.Background(), li)
			if err != nil {
				return fmt.Errorf("service: snapshot replay: %w", err)
			}
			s.commitLocked(slot)
		}
	case os.IsNotExist(err):
		// First boot: nothing to recover.
	default:
		return err
	}
	if walPath == "" {
		return nil
	}
	// With compaction on, records at or below the snapshot watermark may have
	// been truncated away in a previous life; advertise the snapshot seq as
	// the replication base so a follower asking for history below it is sent
	// to snapshot catch-up instead of silently missing rows. Without a
	// snapshot the log is complete from zero.
	if s.compactWAL {
		s.walBase = s.seq
	}
	res, err := persist.ReplayWALFileFrom(walPath, s.seq, func(seq uint64, li feature.Labeled) error {
		//rkvet:ignore ctxflow WAL replay runs inside NewServer before any request exists; a torn replay would lose acknowledged observations
		slot, err := s.admitLocked(context.Background(), li)
		if err != nil {
			return err
		}
		s.commitLocked(slot)
		s.seq = seq
		return nil
	})
	if err != nil {
		return err
	}
	if res.Torn {
		// Drop the torn tail from the file, not just from memory: the log is
		// reopened O_APPEND, so without this a fresh record would land after
		// the garbage line and the *next* recovery would stop short of it —
		// silently losing an acknowledged observation on the second crash.
		if terr := os.Truncate(walPath, res.Offset); terr != nil {
			return fmt.Errorf("service: dropping torn wal tail: %w", terr)
		}
	}
	return nil
}

// admitLocked adds one instance to the context and the drift monitor as a
// unit: if the monitor rejects the instance after the context accepted it,
// the context add is rolled back so a client retry cannot duplicate the row.
// Callers hold s.mu; on success they must follow with commitLocked (or roll
// back themselves via ctx.Remove).
func (s *Server) admitLocked(ctx context.Context, li feature.Labeled) (int, error) {
	slot, err := s.ctx.AddSlot(li)
	if err != nil {
		return 0, err
	}
	if s.monitor != nil {
		if _, err := s.monitor.ObserveCtx(ctx, li); err != nil {
			s.monitorRollbacks.Add(1)
			rollbackMonitor.Inc()
			s.logger.Warn("observation rolled back: monitor rejected the row", "err", err)
			if rerr := s.ctx.Remove(slot); rerr != nil {
				return 0, monitorError{fmt.Errorf("%w (rollback failed: %v)", err, rerr)}
			}
			return 0, monitorError{err}
		}
	}
	return slot, nil
}

// commitLocked finishes an admitted observation: it enters the slot into the
// retention FIFO and evicts the oldest rows past the bound. Callers hold
// s.mu.
func (s *Server) commitLocked(slot int) {
	if s.retain <= 0 {
		return
	}
	s.order = append(s.order, slot)
	for s.ctx.Len() > s.retain {
		if err := s.ctx.Remove(s.order[s.orderHead]); err != nil {
			// Slots in the FIFO are live by construction; a failure here is a
			// programming error, not an input error.
			panic(fmt.Sprintf("service: retention eviction: %v", err))
		}
		s.orderHead++
	}
	// Compact the slot FIFO once the dead prefix dominates.
	if s.orderHead > len(s.order)/2 && s.orderHead > 64 {
		s.order = append(s.order[:0], s.order[s.orderHead:]...)
		s.orderHead = 0
	}
}

// observeLocked runs the full observation pipeline: admit (context +
// monitor, with rollback), log to the WAL, then commit retention and maybe
// snapshot. The WAL append happens before the observation becomes evictable
// so a crash cannot lose a row the client saw acknowledged (modulo the sync
// policy). Callers hold s.mu.
func (s *Server) observeLocked(ctx context.Context, li feature.Labeled) error {
	slot, err := s.admitLocked(ctx, li)
	if err != nil {
		return err
	}
	if s.wal != nil {
		if err := s.wal.Append(s.seq+1, li); err != nil {
			// The record did not reach the log (a torn tail is dropped on
			// replay), so roll the row back: the client gets a retryable 503
			// and the state stays exactly as before the request. The monitor
			// has already counted the arrival; panel statistics may run one
			// ahead, which is acceptable for a drift estimate.
			s.walRollbacks.Add(1)
			rollbackWAL.Inc()
			s.logger.Warn("observation rolled back: wal append failed", "err", err)
			if rerr := s.ctx.Remove(slot); rerr != nil {
				return persistError{fmt.Errorf("%w (rollback failed: %v)", err, rerr)}
			}
			return persistError{err}
		}
		s.sinceSync++
		if s.sinceSync >= s.walSyncEvery {
			s.sinceSync = 0
			if err := s.wal.Sync(); err != nil {
				// The row is in memory and in the kernel's page cache; only
				// durability against power loss is uncertain. Count it rather
				// than force the client into a duplicating retry.
				s.syncFailures.Add(1)
				walSyncFailures.Inc()
				s.logger.Warn("wal sync failed", "err", err)
			}
		}
	}
	s.seq++
	if s.onReplicate != nil {
		// Publish only after the record is durable in the log: a follower
		// must never apply a row its primary could forget in a crash.
		s.onReplicate(s.seq, li)
	}
	s.commitLocked(slot)
	s.sinceSnapshot++
	if s.snapPath != "" && s.sinceSnapshot >= s.snapshotEvery {
		s.sinceSnapshot = 0
		if err := s.snapshotLocked(); err != nil {
			// The WAL still covers everything since the last good snapshot;
			// recovery just replays more.
			s.snapFailures.Add(1)
			snapshotFailures.Inc()
			s.logger.Warn("periodic snapshot failed", "err", err)
		} else if s.compactWAL && s.wal != nil {
			// The snapshot covers every logged record, so the log can start
			// over; followers below the new base catch up from the snapshot.
			if err := s.wal.Truncate(); err != nil {
				s.logger.Warn("wal compaction failed", "err", err)
			} else {
				s.walBase = s.seq
			}
		}
	}
	return nil
}

// itemsLocked returns the live rows in arrival order — the order retention
// needs to keep evicting oldest-first after a recovery. Callers hold s.mu.
func (s *Server) itemsLocked() []feature.Labeled {
	if s.retain <= 0 {
		return s.ctx.LiveItems()
	}
	items := make([]feature.Labeled, 0, s.ctx.Len())
	for _, slot := range s.order[s.orderHead:] {
		if s.ctx.Alive(slot) {
			items = append(items, s.ctx.Item(slot))
		}
	}
	return items
}

// snapshotLocked atomically writes the current rows and sequence watermark.
// Callers hold s.mu.
func (s *Server) snapshotLocked() error {
	if s.snapPath == "" {
		return nil
	}
	return persist.SaveSnapshot(s.snapPath, s.schema, s.itemsLocked(), s.seq)
}

// Snapshot forces a snapshot of the current state to the configured state
// directory; a no-op without persistence.
func (s *Server) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// Close snapshots the final state, closes the observation log, and marks the
// server draining: later observes and explains answer 503. Safe to call
// more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.jobs != nil {
		// Stop the batch runner; a persisted job resumes from its checkpoint
		// log on the next boot.
		s.jobs.close()
	}
	err := s.snapshotLocked()
	if s.wal != nil {
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ContextSize reports the live rows in the explanation context.
func (s *Server) ContextSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ctx.Len()
}

// HealthzHandler exposes /healthz standalone, for an ops mux bound to a
// separate (firewalled) listener.
func (s *Server) HealthzHandler() http.Handler { return http.HandlerFunc(s.handleHealthz) }

// Seq reports the sequence number of the last admitted observation.
func (s *Server) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// Warm bulk-loads labeled instances into the context (and the drift monitor
// and observation log, when active); returns the number loaded.
func (s *Server) Warm(items []feature.Labeled) (int, error) {
	return s.WarmCtx(context.Background(), items) //rkvet:ignore ctxflow Warm is the sanctioned pre-serving specialization used by boot-time wiring; WarmCtx is the deadline-aware path
}

// WarmCtx is Warm with the caller's context threaded through the observation
// pipeline, so a warm launched under a deadline traces and degrades like live
// traffic.
func (s *Server) WarmCtx(ctx context.Context, items []feature.Labeled) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.follower {
		return 0, errors.New("service: a read replica warms from its primary, not from local data")
	}
	for i, li := range items {
		if err := s.observeLocked(ctx, li); err != nil {
			return i, err
		}
	}
	return len(items), nil
}

// Handler returns the HTTP mux for the service, wrapped in panic recovery:
// a panicking handler answers 500 and the process survives to serve the next
// request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/schema", s.handleSchema)
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/stream", s.handleJobStream)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", obs.Default.Handler())
	if s.tracer != nil {
		mux.Handle("/debug/traces", s.tracer.Handler())
	}
	return s.instrument(s.recoverPanics(mux))
}

// instrument is the outermost middleware: it tracks in-flight requests,
// records per-endpoint traffic and latency, and starts a sampled trace whose
// spans downstream stages (solvers, WAL, snapshot) attach to via the request
// context. The unsampled path costs one atomic add on the tracer plus the
// endpoint instruments.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := endpointLabel(r.URL.Path)
		httpInFlight.Inc()
		defer httpInFlight.Dec()
		if tr := s.tracer.Start(endpoint); tr != nil {
			defer tr.Finish()
			r = r.WithContext(obs.ContextWithTrace(r.Context(), tr))
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		httpSeconds.With(endpoint).ObserveSince(start)
		httpRequests.With(endpoint, strconv.Itoa(rec.code)).Inc()
	})
}

// statusRecorder captures the response code for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// recoverPanics converts handler panics into 500s so one poisoned request
// cannot take the service down. http.ErrAbortHandler is the stdlib's own
// "abort this response" signal and must keep propagating.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.panicsRecovered.Add(1)
			panicsRecoveredTotal.Inc()
			s.logger.Error("handler panic recovered", "panic", fmt.Sprint(p), "path", r.URL.Path)
			http.Error(w, fmt.Sprintf("internal error: %v", p), http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// ObserveRequest is one served inference: attribute name → value string,
// plus the prediction observed from the model.
type ObserveRequest struct {
	Values     map[string]string `json:"values"`
	Prediction string            `json:"prediction"`
}

// ExplainRequest asks for the relative key of an observed instance. Alpha
// optionally overrides the server default; DeadlineMS optionally overrides
// the server's default solve deadline (milliseconds). MaxStalenessMS is the
// replica staleness bound: a follower whose applied state is older sheds the
// request (503 + Retry-After) instead of answering from it; 0 means any
// staleness is acceptable.
type ExplainRequest struct {
	Values         map[string]string `json:"values"`
	Prediction     string            `json:"prediction"`
	Alpha          float64           `json:"alpha,omitempty"`
	DeadlineMS     int64             `json:"deadline_ms,omitempty"`
	MaxStalenessMS int64             `json:"max_staleness_ms,omitempty"`

	// NoCache bypasses the explanation cache and request coalescing for this
	// request: the solve always runs. The response body is byte-identical to
	// the cached path at the same context version (the differential suite
	// enforces this); only the X-RK-Cache header differs.
	NoCache bool `json:"no_cache,omitempty"`
}

// ExplainResponse carries the explanation. Degraded marks a key completed
// under an expired deadline: still α-conformant, but possibly larger than
// the greedy key. On a follower every response also carries the staleness
// contract: ReplicaSeq is the observation the answer's context is current
// through, StalenessMS how long ago the follower was provably caught up
// (-1 = never yet synced; only possible when no bound was requested).
type ExplainResponse struct {
	Features    []string `json:"features"`
	Rule        string   `json:"rule"`
	Precision   float64  `json:"precision"`
	Coverage    int      `json:"coverage"`
	Context     int      `json:"context_size"`
	Degraded    bool     `json:"degraded,omitempty"`
	ReplicaSeq  *uint64  `json:"replica_seq,omitempty"`
	StalenessMS *int64   `json:"staleness_ms,omitempty"`
}

// StatsResponse summarizes the service state.
type StatsResponse struct {
	ContextSize      int     `json:"context_size"`
	Alpha            float64 `json:"alpha"`
	Retention        int     `json:"retention,omitempty"`
	SolverParallel   int     `json:"solver_parallelism,omitempty"`
	AvgSuccinctness  float64 `json:"monitor_avg_succinctness,omitempty"`
	MonitorArrivals  int     `json:"monitor_arrivals,omitempty"`
	MonitoringActive bool    `json:"monitoring_active"`
	DegradedTotal    int64   `json:"degraded_total,omitempty"`
	ShedTotal        int64   `json:"shed_total,omitempty"`
	PanicsRecovered  int64   `json:"panics_recovered,omitempty"`
	SyncFailures     int64   `json:"wal_sync_failures,omitempty"`
	SnapshotFailures int64   `json:"snapshot_failures,omitempty"`
	RollbacksMonitor int64   `json:"observe_rollbacks_monitor,omitempty"`
	RollbacksWAL     int64   `json:"observe_rollbacks_wal,omitempty"`
	Seq              uint64  `json:"seq,omitempty"`
	PersistenceOn    bool    `json:"persistence_active,omitempty"`

	// Explanation cache and coalescing (DESIGN.md §15). CacheActive is false
	// when the server runs with CacheOff.
	CacheActive    bool  `json:"cache_active"`
	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheCoalesced int64 `json:"cache_coalesced,omitempty"`
	CacheBypassed  int64 `json:"cache_bypassed,omitempty"`
	CacheEntries   int   `json:"cache_entries,omitempty"`
	CacheBytes     int64 `json:"cache_bytes,omitempty"`

	// Async batch jobs (DESIGN.md §15): aggregate counters plus per-job
	// progress for every unfinished job.
	Jobs *JobsStats `json:"jobs,omitempty"`

	// Replication state (DESIGN.md §14). Role is always present; the lag
	// fields are meaningful on a follower (StalenessMS -1 = never synced).
	Role        string `json:"role"`
	Epoch       string `json:"epoch,omitempty"`
	AppliedSeq  uint64 `json:"applied_seq,omitempty"`
	PrimarySeq  uint64 `json:"primary_seq,omitempty"`
	LagEntries  int64  `json:"replica_lag_entries,omitempty"`
	StalenessMS int64  `json:"staleness_ms,omitempty"`
}

// HealthResponse is the /healthz body: liveness plus the failure counters an
// operator checks first — observation rollbacks (client-visible 500/503s with
// state correctly undone), durability hiccups, and recovered panics.
type HealthResponse struct {
	Status           string `json:"status"` // "ok" or "draining"
	UptimeSeconds    int64  `json:"uptime_seconds"`
	ContextSize      int    `json:"context_size"`
	Seq              uint64 `json:"seq"`
	RollbacksMonitor int64  `json:"observe_rollbacks_monitor"`
	RollbacksWAL     int64  `json:"observe_rollbacks_wal"`
	SyncFailures     int64  `json:"wal_sync_failures"`
	SnapshotFailures int64  `json:"snapshot_failures"`
	PanicsRecovered  int64  `json:"panics_recovered"`

	// Replication state (DESIGN.md §14): the first things an operator checks
	// on a replica — what it is, which primary life it follows, how far along.
	Role        string `json:"role"`
	Epoch       string `json:"epoch,omitempty"`
	AppliedSeq  uint64 `json:"applied_seq"`
	LagEntries  int64  `json:"replica_lag_entries,omitempty"`
	StalenessMS int64  `json:"staleness_ms,omitempty"`
}

// monitorError marks drift-monitor failures (server-side, 500) so the
// observe handler can distinguish them from client input errors (400).
type monitorError struct{ err error }

func (e monitorError) Error() string { return e.err.Error() }
func (e monitorError) Unwrap() error { return e.err }

// persistError marks observation-log failures: the observation was rolled
// back and the client should retry (503 + Retry-After).
type persistError struct{ err error }

func (e persistError) Error() string { return e.err.Error() }
func (e persistError) Unwrap() error { return e.err }

// errDraining answers requests arriving after Close started.
var errDraining = errors.New("service: shutting down")

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type attr struct {
		Name   string   `json:"name"`
		Values []string `json:"values"`
	}
	out := struct {
		Attributes []attr   `json:"attributes"`
		Labels     []string `json:"labels"`
	}{Labels: s.schema.Labels}
	for _, a := range s.schema.Attrs {
		out.Attributes = append(out.Attributes, attr{Name: a.Name, Values: a.Values})
	}
	writeJSON(w, out)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.follower {
		// A replica's context mirrors its primary; accepting writes here
		// would fork the history. Clients must observe against the primary.
		http.Error(w, "read replica: /observe is served by the primary", http.StatusForbidden)
		return
	}
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	li, err := s.decode(req.Values, req.Prediction)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		shedDraining.Inc()
		unavailable(w, errDraining.Error())
		return
	}
	if err := s.observeLocked(r.Context(), li); err != nil {
		switch err.(type) {
		case monitorError:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		case persistError:
			unavailable(w, err.Error())
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	writeJSON(w, map[string]int{"context_size": s.ctx.Len()})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	li, err := s.decode(req.Values, req.Prediction)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	alpha := s.alpha
	// 0 is encoding/json's omitted-field value: "use the server default".
	// Any explicitly sent alpha, valid or not, goes through validation.
	if req.Alpha != 0 { //rkvet:ignore floateq 0 is the JSON omitted-field sentinel
		if err := core.ValidateAlpha(req.Alpha); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		alpha = req.Alpha
	}
	deadline := s.defaultDeadline
	if req.DeadlineMS != 0 {
		if req.DeadlineMS < 0 {
			http.Error(w, "deadline_ms must be positive", http.StatusBadRequest)
			return
		}
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	// The hard floor: below it the degraded answer would be all features —
	// useless as an explanation — so shed instead of wasting the work.
	if s.minDeadline > 0 && deadline > 0 && deadline < s.minDeadline {
		shedDeadlineFloor.Inc()
		unavailable(w, fmt.Sprintf("deadline %v below the service floor %v", deadline, s.minDeadline))
		return
	}
	if req.MaxStalenessMS < 0 {
		http.Error(w, "max_staleness_ms must be ≥ 0", http.StatusBadRequest)
		return
	}
	// The staleness contract, checked before spending solve work: a follower
	// that cannot meet the bound sheds now so the client's retry (with the
	// Retry-After backoff) lands after catch-up. A primary is never stale.
	if s.follower && req.MaxStalenessMS > 0 {
		if stale := s.StalenessMS(); stale < 0 || stale > req.MaxStalenessMS {
			s.shedTotal.Add(1)
			shedStale.Inc()
			unavailable(w, fmt.Sprintf("replica staleness %dms exceeds the requested bound %dms", stale, req.MaxStalenessMS))
			return
		}
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.shedTotal.Add(1)
			shedOverload.Inc()
			w.Header().Set("Retry-After", "1")
			http.Error(w, "too many in-flight explains", http.StatusTooManyRequests)
			return
		}
	}
	ctx := r.Context()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		shedDraining.Inc()
		unavailable(w, errDraining.Error())
		return
	}
	out, source := s.explainLocked(ctx, li, alpha, deadline, req.NoCache)
	if out.err != nil {
		http.Error(w, out.err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-RK-Cache", source)
	if out.e.noKey {
		http.Error(w, "no α-conformant key exists for this instance", http.StatusConflict)
		return
	}
	if out.e.resp.Degraded {
		s.degradedTotal.Add(1)
		explainDegraded.Inc()
	}
	resp := out.e.resp
	if s.follower {
		// Re-check the bound after the solve: a long solve (or a stream that
		// died mid-request) must not convert an in-bound admission into an
		// out-of-bound answer. The response always states what it is current
		// through, bound requested or not.
		seq, stale := s.seq, s.StalenessMS()
		if req.MaxStalenessMS > 0 && (stale < 0 || stale > req.MaxStalenessMS) {
			s.shedTotal.Add(1)
			shedStale.Inc()
			unavailable(w, fmt.Sprintf("replica staleness %dms exceeds the requested bound %dms", stale, req.MaxStalenessMS))
			return
		}
		resp.ReplicaSeq, resp.StalenessMS = &seq, &stale
		w.Header().Set("X-RK-Replica-Seq", strconv.FormatUint(seq, 10))
		w.Header().Set("X-RK-Staleness-MS", strconv.FormatInt(stale, 10))
	}
	writeJSON(w, resp)
}

// explainLocked answers one explain through the cache and flight group
// (DESIGN.md §15): bypass (cache off or no_cache) solves directly; otherwise
// the canonical key — context version, solver tag, alpha, instance — is
// looked up, and misses coalesce so concurrent identical requests run one
// solve. source is the X-RK-Cache header value: "hit", "miss", "coalesced",
// or "bypass". Callers hold s.mu (read); the version therefore cannot move
// under the flight, so every member of a flight shares one solve problem.
func (s *Server) explainLocked(ctx context.Context, li feature.Labeled, alpha float64, budget time.Duration, noCache bool) (solveOutcome, string) {
	if s.cache == nil || noCache {
		s.cacheBypassed.Add(1)
		cacheBypass.Inc()
		return s.solveEntryLocked(ctx, li, alpha, budget), "bypass"
	}
	ckey := EncodeCacheKey(CacheKey{
		Version: s.ctxVersionBase + s.ctx.Version(),
		Config:  s.solverTag,
		Alpha:   alpha,
		Y:       li.Y,
		X:       li.X,
	})
	if e, ok := s.cache.get(ckey, budget); ok {
		s.cacheHits.Add(1)
		cacheHit.Inc()
		return solveOutcome{e: e}, "hit"
	}
	out, _, coalesced := s.flights.do(ctx, ckey, budget, func() solveOutcome {
		o := s.solveEntryLocked(ctx, li, alpha, budget)
		// Cache every deterministic outcome. A degraded result is cached only
		// with a positive budget attached (so the serve rule can compare); a
		// solve degraded by a client disconnect on an unbounded request is
		// servable to nobody and is not stored.
		if o.err == nil && (!o.e.degraded || o.e.budget > 0) {
			s.cache.put(ckey, o.e)
		}
		return o
	})
	if !coalesced {
		s.cacheMisses.Add(1)
		cacheMiss.Inc()
		return out, "miss"
	}
	s.cacheCoalesced.Add(1)
	cacheCoalesced.Inc()
	// The leader's outcome may not be usable here: the leader erred or
	// panicked, this waiter's deadline fired first, or the result degraded
	// under a shorter budget than this request carries. All of those fall
	// back to a direct solve — on an expired waiter context the anytime
	// solver completes on its cheap degraded path, so the fallback cannot
	// blow the deadline it just missed.
	if out.err != nil || !out.e.servableFor(budget) {
		return s.solveEntryLocked(ctx, li, alpha, budget), "miss"
	}
	return out, "coalesced"
}

// solveEntryLocked runs one solve and renders the cacheable outcome: the
// response body fields (shared verbatim between cached and uncached serving,
// so the two are byte-identical), the no-key verdict, and the degraded
// stamp with the budget it effectively ran under. A degraded entry is
// stamped with min(nominal deadline, elapsed solve time): a solve cut short
// by the client disconnecting ran under a smaller effective budget than the
// request's deadline, and stamping the nominal value would let that entry
// satisfy every later request up to the full deadline without a re-solve.
// Callers hold s.mu (read).
func (s *Server) solveEntryLocked(ctx context.Context, li feature.Labeled, alpha float64, budget time.Duration) solveOutcome {
	start := time.Now()
	key, degraded, err := s.solve(ctx, s.ctx, li.X, li.Y, alpha)
	if err == core.ErrNoKey {
		// The no-key verdict is exact (never deadline-degraded), so it caches
		// as a first-class deterministic answer.
		return solveOutcome{e: &cachedExplain{noKey: true, resp: ExplainResponse{Context: s.ctx.Len()}}}
	}
	if err != nil {
		return solveOutcome{err: err}
	}
	resp := ExplainResponse{
		Rule:      key.RenderRule(s.schema, li.X, li.Y),
		Precision: core.PrecisionPar(s.ctx, li.X, li.Y, key, s.parallelism),
		Coverage:  core.CoveragePar(s.ctx, li.X, li.Y, key, s.parallelism),
		Context:   s.ctx.Len(),
		Degraded:  degraded,
	}
	for _, a := range key {
		resp.Features = append(resp.Features, s.schema.Attrs[a].Name)
	}
	stamp := budget
	if degraded && budget > 0 {
		if elapsed := time.Since(start); elapsed < stamp {
			stamp = elapsed
		}
	}
	return solveOutcome{e: &cachedExplain{resp: resp, degraded: degraded, budget: stamp}}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := StatsResponse{
		ContextSize:      s.ctx.Len(),
		Alpha:            s.alpha,
		Retention:        s.retain,
		SolverParallel:   s.parallelism,
		DegradedTotal:    s.degradedTotal.Load(),
		ShedTotal:        s.shedTotal.Load(),
		PanicsRecovered:  s.panicsRecovered.Load(),
		SyncFailures:     s.syncFailures.Load(),
		SnapshotFailures: s.snapFailures.Load(),
		RollbacksMonitor: s.monitorRollbacks.Load(),
		RollbacksWAL:     s.walRollbacks.Load(),
		Seq:              s.seq,
		PersistenceOn:    s.wal != nil || s.snapPath != "",
		Role:             s.roleLocked(),
		Epoch:            s.epoch,
	}
	if s.cache != nil {
		resp.CacheActive = true
		resp.CacheHits = s.cacheHits.Load()
		resp.CacheMisses = s.cacheMisses.Load()
		resp.CacheCoalesced = s.cacheCoalesced.Load()
		resp.CacheBypassed = s.cacheBypassed.Load()
		resp.CacheEntries, resp.CacheBytes = s.cache.stats()
	}
	if s.jobs != nil {
		resp.Jobs = s.jobs.statsSnapshot()
	}
	if s.follower {
		resp.AppliedSeq = s.seq
		resp.PrimarySeq = s.primarySeq.Load()
		resp.LagEntries = s.lagEntriesLocked()
		resp.StalenessMS = s.StalenessMS()
	}
	if s.monitor != nil {
		resp.MonitoringActive = true
		resp.AvgSuccinctness = s.monitor.AvgSuccinctness()
		resp.MonitorArrivals = s.monitor.Arrivals()
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	status := "ok"
	if s.closed {
		status = "draining"
	}
	resp := HealthResponse{
		Status:           status,
		UptimeSeconds:    int64(time.Since(s.start).Seconds()),
		ContextSize:      s.ctx.Len(),
		Seq:              s.seq,
		RollbacksMonitor: s.monitorRollbacks.Load(),
		RollbacksWAL:     s.walRollbacks.Load(),
		SyncFailures:     s.syncFailures.Load(),
		SnapshotFailures: s.snapFailures.Load(),
		PanicsRecovered:  s.panicsRecovered.Load(),
		Role:             s.roleLocked(),
		Epoch:            s.epoch,
		AppliedSeq:       s.seq,
	}
	if s.follower {
		resp.LagEntries = s.lagEntriesLocked()
		resp.StalenessMS = s.StalenessMS()
	}
	writeJSON(w, resp)
}

// decode converts a name→value map and label string into a labeled instance.
func (s *Server) decode(values map[string]string, prediction string) (feature.Labeled, error) {
	x := make(feature.Instance, s.schema.NumFeatures())
	for a, attr := range s.schema.Attrs {
		raw, ok := values[attr.Name]
		if !ok {
			return feature.Labeled{}, fmt.Errorf("service: missing attribute %q", attr.Name)
		}
		v := attr.ValueCode(raw)
		if v < 0 {
			return feature.Labeled{}, fmt.Errorf("service: value %q outside the domain of %q", raw, attr.Name)
		}
		x[a] = v
	}
	if len(values) != s.schema.NumFeatures() {
		return feature.Labeled{}, fmt.Errorf("service: request carries %d attributes, schema has %d", len(values), s.schema.NumFeatures())
	}
	y := s.schema.LabelCode(prediction)
	if y < 0 {
		return feature.Labeled{}, fmt.Errorf("service: unknown prediction %q", prediction)
	}
	return feature.Labeled{X: x, Y: y}, nil
}

// unavailable answers 503 with a Retry-After hint: the condition is
// transient (draining, log hiccup, deadline floor) and a later retry can
// succeed.
func unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, msg, http.StatusServiceUnavailable)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
