// Package service exposes CCE as an HTTP service, matching the paper's
// deployment picture (§6): it sits at the client side of a (possibly remote)
// ML model, accumulates the (instance, prediction) pairs observed during
// serving via /observe, and answers /explain with relative keys — never
// contacting the model. Instances travel as attribute-value string maps so
// clients need no knowledge of internal value codes.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"github.com/xai-db/relativekeys/internal/cce"
	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/feature"
)

// driftObserver is the slice of cce.DriftMonitor the server depends on; a
// seam so tests can inject failing monitors when exercising the observe
// rollback path.
type driftObserver interface {
	Observe(feature.Labeled) error
	AvgSuccinctness() float64
	Arrivals() int
}

// Server is an HTTP CCE endpoint over a fixed schema. It is safe for
// concurrent use.
type Server struct {
	schema *feature.Schema
	alpha  float64
	retain int // max live context rows; 0 = grow forever

	mu      sync.RWMutex
	ctx     *core.Context // guarded by mu
	monitor driftObserver // guarded by mu

	// order tracks live context slots oldest-first when retention is on.
	order     []int // guarded by mu
	orderHead int   // guarded by mu
}

// New builds a server with an empty, unbounded context.
func New(schema *feature.Schema, alpha float64, panelSize int) (*Server, error) {
	return NewWithRetention(schema, alpha, panelSize, 0)
}

// NewWithRetention builds a server whose context keeps only the most recent
// `retain` observations (0 = unbounded): once full, each /observe retires
// the oldest row in place, so a long-running service holds steady memory and
// explains against the freshest inference behaviour instead of the entire
// history. retain must be 0 or positive.
func NewWithRetention(schema *feature.Schema, alpha float64, panelSize, retain int) (*Server, error) {
	if err := core.ValidateAlpha(alpha); err != nil {
		return nil, err
	}
	if retain < 0 {
		return nil, fmt.Errorf("service: retention %d must be ≥ 0", retain)
	}
	ctx, err := core.NewContextSized(schema, nil, retain)
	if err != nil {
		return nil, err
	}
	s := &Server{schema: schema, alpha: alpha, retain: retain, ctx: ctx}
	if panelSize > 0 {
		mon, err := cce.NewDriftMonitor(schema, alpha, panelSize, 1)
		if err != nil {
			return nil, err
		}
		s.monitor = mon
	}
	return s, nil
}

// observeLocked admits one instance into the context and the drift monitor
// as a unit: if the monitor rejects the instance after the context accepted
// it, the context add is rolled back so a client retry cannot duplicate the
// row. Retention eviction runs only after the pair committed. Callers hold
// s.mu.
func (s *Server) observeLocked(li feature.Labeled) error {
	slot, err := s.ctx.AddSlot(li)
	if err != nil {
		return err
	}
	if s.monitor != nil {
		if err := s.monitor.Observe(li); err != nil {
			if rerr := s.ctx.Remove(slot); rerr != nil {
				return monitorError{fmt.Errorf("%w (rollback failed: %v)", err, rerr)}
			}
			return monitorError{err}
		}
	}
	if s.retain > 0 {
		s.order = append(s.order, slot)
		for s.ctx.Len() > s.retain {
			if err := s.ctx.Remove(s.order[s.orderHead]); err != nil {
				return err
			}
			s.orderHead++
		}
		// Compact the slot FIFO once the dead prefix dominates.
		if s.orderHead > len(s.order)/2 && s.orderHead > 64 {
			s.order = append(s.order[:0], s.order[s.orderHead:]...)
			s.orderHead = 0
		}
	}
	return nil
}

// Warm bulk-loads labeled instances into the context (and the drift monitor,
// when active); returns the number loaded.
func (s *Server) Warm(items []feature.Labeled) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, li := range items {
		if err := s.observeLocked(li); err != nil {
			return i, err
		}
	}
	return len(items), nil
}

// Handler returns the HTTP mux for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/schema", s.handleSchema)
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// ObserveRequest is one served inference: attribute name → value string,
// plus the prediction observed from the model.
type ObserveRequest struct {
	Values     map[string]string `json:"values"`
	Prediction string            `json:"prediction"`
}

// ExplainRequest asks for the relative key of an observed instance. Alpha
// optionally overrides the server default.
type ExplainRequest struct {
	Values     map[string]string `json:"values"`
	Prediction string            `json:"prediction"`
	Alpha      float64           `json:"alpha,omitempty"`
}

// ExplainResponse carries the explanation.
type ExplainResponse struct {
	Features  []string `json:"features"`
	Rule      string   `json:"rule"`
	Precision float64  `json:"precision"`
	Coverage  int      `json:"coverage"`
	Context   int      `json:"context_size"`
}

// StatsResponse summarizes the service state.
type StatsResponse struct {
	ContextSize      int     `json:"context_size"`
	Alpha            float64 `json:"alpha"`
	Retention        int     `json:"retention,omitempty"`
	AvgSuccinctness  float64 `json:"monitor_avg_succinctness,omitempty"`
	MonitorArrivals  int     `json:"monitor_arrivals,omitempty"`
	MonitoringActive bool    `json:"monitoring_active"`
}

// monitorError marks drift-monitor failures (server-side, 500) so the
// observe handler can distinguish them from client input errors (400).
type monitorError struct{ err error }

func (e monitorError) Error() string { return e.err.Error() }
func (e monitorError) Unwrap() error { return e.err }

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	type attr struct {
		Name   string   `json:"name"`
		Values []string `json:"values"`
	}
	out := struct {
		Attributes []attr   `json:"attributes"`
		Labels     []string `json:"labels"`
	}{Labels: s.schema.Labels}
	for _, a := range s.schema.Attrs {
		out.Attributes = append(out.Attributes, attr{Name: a.Name, Values: a.Values})
	}
	writeJSON(w, out)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	li, err := s.decode(req.Values, req.Prediction)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.observeLocked(li); err != nil {
		status := http.StatusBadRequest
		if _, server := err.(monitorError); server {
			status = http.StatusInternalServerError
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, map[string]int{"context_size": s.ctx.Len()})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	li, err := s.decode(req.Values, req.Prediction)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	alpha := s.alpha
	// 0 is encoding/json's omitted-field value: "use the server default".
	// Any explicitly sent alpha, valid or not, goes through validation.
	if req.Alpha != 0 { //rkvet:ignore floateq 0 is the JSON omitted-field sentinel
		if err := core.ValidateAlpha(req.Alpha); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		alpha = req.Alpha
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	key, err := core.SRK(s.ctx, li.X, li.Y, alpha)
	if err == core.ErrNoKey {
		http.Error(w, "no α-conformant key exists for this instance", http.StatusConflict)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := ExplainResponse{
		Rule:      key.RenderRule(s.schema, li.X, li.Y),
		Precision: core.Precision(s.ctx, li.X, li.Y, key),
		Coverage:  core.Coverage(s.ctx, li.X, li.Y, key),
		Context:   s.ctx.Len(),
	}
	for _, a := range key {
		resp.Features = append(resp.Features, s.schema.Attrs[a].Name)
	}
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := StatsResponse{ContextSize: s.ctx.Len(), Alpha: s.alpha, Retention: s.retain}
	if s.monitor != nil {
		resp.MonitoringActive = true
		resp.AvgSuccinctness = s.monitor.AvgSuccinctness()
		resp.MonitorArrivals = s.monitor.Arrivals()
	}
	writeJSON(w, resp)
}

// decode converts a name→value map and label string into a labeled instance.
func (s *Server) decode(values map[string]string, prediction string) (feature.Labeled, error) {
	x := make(feature.Instance, s.schema.NumFeatures())
	for a, attr := range s.schema.Attrs {
		raw, ok := values[attr.Name]
		if !ok {
			return feature.Labeled{}, fmt.Errorf("service: missing attribute %q", attr.Name)
		}
		v := attr.ValueCode(raw)
		if v < 0 {
			return feature.Labeled{}, fmt.Errorf("service: value %q outside the domain of %q", raw, attr.Name)
		}
		x[a] = v
	}
	if len(values) != s.schema.NumFeatures() {
		return feature.Labeled{}, fmt.Errorf("service: request carries %d attributes, schema has %d", len(values), s.schema.NumFeatures())
	}
	y := s.schema.LabelCode(prediction)
	if y < 0 {
		return feature.Labeled{}, fmt.Errorf("service: unknown prediction %q", prediction)
	}
	return feature.Labeled{X: x, Y: y}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
