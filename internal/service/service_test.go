package service

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/xai-db/relativekeys/internal/feature"
)

func testServer(t *testing.T, panel int) (*Server, *httptest.Server, *Client) {
	t.Helper()
	schema := feature.MustSchema([]feature.Attribute{
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
		{Name: "Area", Values: []string{"Urban", "Rural"}},
	}, []string{"Denied", "Approved"})
	srv, err := New(schema, 1.0, panel)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, NewClient(ts.URL)
}

func observeAll(t *testing.T, c *Client) {
	t.Helper()
	rows := []struct {
		income, credit, area, pred string
	}{
		{"3-4K", "poor", "Urban", "Denied"},
		{"5-6K", "poor", "Urban", "Approved"},
		{"3-4K", "poor", "Rural", "Denied"},
		{"3-4K", "good", "Urban", "Approved"},
		{"1-2K", "poor", "Urban", "Denied"},
		{"5-6K", "good", "Rural", "Approved"},
	}
	for _, r := range rows {
		err := c.Observe(map[string]string{
			"Income": r.income, "Credit": r.credit, "Area": r.area,
		}, r.pred)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServiceEndToEnd(t *testing.T) {
	_, _, client := testServer(t, 3)
	observeAll(t, client)

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ContextSize != 6 || !stats.MonitoringActive || stats.MonitorArrivals != 6 {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err := client.Explain(map[string]string{
		"Income": "3-4K", "Credit": "poor", "Area": "Urban",
	}, "Denied", 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Precision != 1 {
		t.Fatalf("precision = %v", resp.Precision)
	}
	if len(resp.Features) == 0 || !strings.Contains(resp.Rule, "THEN Denied") {
		t.Fatalf("rule = %q features = %v", resp.Rule, resp.Features)
	}
	if resp.Context != 6 {
		t.Fatalf("context = %d", resp.Context)
	}
	// α override is honored (looser bound can only shrink the key).
	relaxed, err := client.Explain(map[string]string{
		"Income": "3-4K", "Credit": "poor", "Area": "Urban",
	}, "Denied", 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed.Features) > len(resp.Features) {
		t.Fatalf("relaxed key larger: %v vs %v", relaxed.Features, resp.Features)
	}
}

func TestServiceValidation(t *testing.T) {
	_, ts, client := testServer(t, 0)

	if err := client.Observe(map[string]string{"Income": "3-4K"}, "Denied"); err == nil {
		t.Fatal("missing attributes accepted")
	}
	if err := client.Observe(map[string]string{
		"Income": "nope", "Credit": "poor", "Area": "Urban",
	}, "Denied"); err == nil {
		t.Fatal("out-of-domain value accepted")
	}
	if err := client.Observe(map[string]string{
		"Income": "3-4K", "Credit": "poor", "Area": "Urban", "Extra": "x",
	}, "Denied"); err == nil {
		t.Fatal("extra attribute accepted")
	}
	if err := client.Observe(map[string]string{
		"Income": "3-4K", "Credit": "poor", "Area": "Urban",
	}, "Maybe"); err == nil {
		t.Fatal("unknown prediction accepted")
	}
	if _, err := client.Explain(map[string]string{
		"Income": "3-4K", "Credit": "poor", "Area": "Urban",
	}, "Denied", 2.0); err == nil {
		t.Fatal("bad alpha accepted")
	}
	// Wrong methods are rejected.
	resp, err := ts.Client().Get(ts.URL + "/observe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("GET /observe accepted")
	}
}

func TestServiceConflict(t *testing.T) {
	_, _, client := testServer(t, 0)
	row := map[string]string{"Income": "3-4K", "Credit": "poor", "Area": "Urban"}
	if err := client.Observe(row, "Denied"); err != nil {
		t.Fatal(err)
	}
	if err := client.Observe(row, "Approved"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Explain(row, "Denied", 0); err == nil {
		t.Fatal("conflicting twin must yield 409")
	} else if !strings.Contains(err.Error(), "409") {
		t.Fatalf("want 409, got %v", err)
	}
}

func TestServiceSchemaEndpoint(t *testing.T) {
	_, ts, _ := testServer(t, 0)
	resp, err := ts.Client().Get(ts.URL + "/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"Income", "Credit", "Denied", "Approved"} {
		if !strings.Contains(body, want) {
			t.Fatalf("schema response missing %q: %s", want, body)
		}
	}
}

func TestServiceConcurrent(t *testing.T) {
	_, _, client := testServer(t, 0)
	observeAll(t, client)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs <- client.Observe(map[string]string{
					"Income": "3-4K", "Credit": "good", "Area": "Rural",
				}, "Approved")
			} else {
				_, err := client.Explain(map[string]string{
					"Income": "3-4K", "Credit": "poor", "Area": "Urban",
				}, "Denied", 0)
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerWarm(t *testing.T) {
	srv, _, client := testServer(t, 2)
	items := []feature.Labeled{
		{X: feature.Instance{0, 0, 0}, Y: 0},
		{X: feature.Instance{1, 1, 1}, Y: 1},
		{X: feature.Instance{2, 0, 1}, Y: 1},
	}
	n, err := srv.Warm(items)
	if err != nil || n != 3 {
		t.Fatalf("Warm = %d, %v", n, err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ContextSize != 3 || stats.MonitorArrivals != 3 {
		t.Fatalf("stats after warm: %+v", stats)
	}
	// Warm must validate rows.
	if _, err := srv.Warm([]feature.Labeled{{X: feature.Instance{9, 9, 9}, Y: 0}}); err == nil {
		t.Fatal("invalid warm row accepted")
	}
}
