// Package sortedkeys is the approved way to iterate a map when the order of
// the results can reach relative-key construction, posting lists, or
// serialized output: collect the keys, sort them, iterate the slice. Go
// randomizes map iteration order per run on purpose, so any key or artifact
// assembled directly inside `for k := range m` differs between identical
// runs — the determinism rkvet's maporder checker exists to prevent.
package sortedkeys

import (
	"cmp"
	"slices"
)

// Of returns the keys of m in ascending order.
func Of[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //rkvet:ignore maporder collecting keys to sort is the sanctioned sink
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// OfFunc returns the keys of m ordered by less, for key types that are not
// cmp.Ordered or need a domain ordering.
func OfFunc[K comparable, V any](m map[K]V, less func(a, b K) int) []K {
	keys := make([]K, 0, len(m))
	for k := range m { //rkvet:ignore maporder collecting keys to sort is the sanctioned sink
		keys = append(keys, k)
	}
	slices.SortFunc(keys, less)
	return keys
}
