package sortedkeys

import (
	"cmp"
	"testing"
)

func TestOf(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	got := Of(m)
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Of returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Of returned %v, want %v", got, want)
		}
	}
	if keys := Of(map[string]int{}); len(keys) != 0 {
		t.Fatalf("Of(empty) = %v, want empty", keys)
	}
}

func TestOfStableAcrossRuns(t *testing.T) {
	// Same map, many iterations: the order must never vary within a process
	// either (map order does).
	m := map[string]int{"x": 1, "q": 2, "a": 3, "m": 4}
	first := Of(m)
	for i := 0; i < 100; i++ {
		again := Of(m)
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("iteration %d gave %v, first gave %v", i, again, first)
			}
		}
	}
}

func TestOfFunc(t *testing.T) {
	m := map[int]string{1: "a", 2: "b", 3: "c"}
	got := OfFunc(m, func(a, b int) int { return cmp.Compare(b, a) }) // descending
	want := []int{3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OfFunc returned %v, want %v", got, want)
		}
	}
}
