// Package relativekeys is a client-centric feature-explanation library
// implementing relative keys (SIGMOD 2024, "Relative Keys: Putting Feature
// Explanation into Context").
//
// A relative key explains a model prediction M(x) with respect to a context I
// of inference instances: it is a minimal set E of features such that every
// instance of I agreeing with x on E receives the same prediction. Relative
// keys combine the perfect (context-bounded) conformity of formal
// explanations with the speed of heuristics, and need no access to the model:
// only the (instance, prediction) pairs observed during serving.
//
// Quick start:
//
//	schema, _ := relativekeys.NewSchema(attrs, labels)
//	cce, _ := relativekeys.NewBatch(schema, inferenceLog, 1.0)
//	key, _ := cce.Explain(x, prediction)
//	fmt.Println(key.RenderRule(schema, x, prediction))
//
// Three operating modes mirror the paper:
//
//   - Batch (algorithm SRK): the whole inference set is the context.
//   - Online (algorithm OSRK): the context is a stream; a target instance's
//     key is maintained with coherence guarantees (E_t ⊆ E_{t+1}).
//   - Static (algorithm SSRK): the universe of possible instances is known
//     offline; a deterministic monitor with a (log m·log n) bound.
//
// The conformity bound α ∈ (0,1] trades succinctness for conformity: an
// α-conformant key may disagree with at most a (1−α) fraction of the context.
//
// Subpackages under internal implement the evaluation substrate of the
// paper: dataset generators, tree/boosting/MLP models, the seven baseline
// explainers (Anchor, LIME, SHAP, GAM, IDS, CERTA and a SAT-based formal
// explainer), metrics, and the experiment harness that regenerates every
// table and figure (see DESIGN.md and EXPERIMENTS.md).
package relativekeys

import (
	"github.com/xai-db/relativekeys/internal/cce"
	"github.com/xai-db/relativekeys/internal/core"
	"github.com/xai-db/relativekeys/internal/feature"
)

// Core data-model types, re-exported for downstream users.
type (
	// Attribute is a named discrete feature with its value domain.
	Attribute = feature.Attribute
	// Schema is an ordered feature space plus the label space.
	Schema = feature.Schema
	// Instance is a tuple of value codes, one per attribute.
	Instance = feature.Instance
	// Label is a prediction code into the schema's label space.
	Label = feature.Label
	// Labeled couples an instance with its observed prediction.
	Labeled = feature.Labeled
	// Bucketer discretizes numeric features into equal-width buckets.
	Bucketer = feature.Bucketer

	// Key is a relative key: a sorted set of feature indices.
	Key = core.Key
	// Context is an indexed collection of labeled inference instances.
	Context = core.Context

	// Batch is CCE's batch mode (algorithm SRK over a full context).
	Batch = cce.Batch
	// Online monitors one instance's key over a stream (algorithm OSRK).
	Online = cce.Online
	// Static monitors over a known universe (algorithm SSRK).
	Static = cce.Static
	// Window is the sliding-window mode for dynamic models.
	Window = cce.Window
	// Policy resolves keys across overlapping windows.
	Policy = cce.Policy
	// DriftMonitor tracks model health via monitored key succinctness.
	DriftMonitor = cce.DriftMonitor
)

// Window resolution policies (Appendix B, Exp-4 of the paper).
const (
	LastWins  = cce.LastWins
	FirstWins = cce.FirstWins
	UnionKey  = cce.UnionKey
)

// ErrNoKey is returned when no α-conformant key exists (the context contains
// an instance identical to the target with a different prediction, beyond the
// α budget).
var ErrNoKey = core.ErrNoKey

// NewSchema builds a validated feature space with the given label space.
func NewSchema(attrs []Attribute, labels []string) (*Schema, error) {
	return feature.NewSchema(attrs, labels)
}

// NewBucketer discretizes the numeric range [lo, hi] into k buckets.
func NewBucketer(lo, hi float64, k int) (*Bucketer, error) {
	return feature.NewBucketer(lo, hi, k)
}

// NewContext indexes a collection of labeled inference instances.
func NewContext(schema *Schema, items []Labeled) (*Context, error) {
	return core.NewContext(schema, items)
}

// NewKey builds a key from feature indices (sorted, deduplicated).
func NewKey(feats ...int) Key { return core.NewKey(feats...) }

// SRK computes an α-conformant relative key for x (predicted y) relative to
// the context, with the ln(α|I|) succinctness bound of the paper's Lemma 3.
func SRK(ctx *Context, x Instance, y Label, alpha float64) (Key, error) {
	return core.SRK(ctx, x, y, alpha)
}

// SRKOrdered is SRK returning the key's features in greedy pick order —
// the lightweight feature ranking of the paper's §6 Remark (2).
func SRKOrdered(ctx *Context, x Instance, y Label, alpha float64) ([]int, error) {
	return core.SRKOrdered(ctx, x, y, alpha)
}

// ExactMinKey solves the minimum relative key problem exactly (exponential;
// small feature counts only). It exists to validate SRK's bound.
func ExactMinKey(ctx *Context, x Instance, y Label, alpha float64) (Key, error) {
	return core.ExactMinKey(ctx, x, y, alpha, 0)
}

// NewBatch builds CCE's batch mode over a complete inference set.
func NewBatch(schema *Schema, inference []Labeled, alpha float64) (*Batch, error) {
	return cce.NewBatch(schema, inference, alpha)
}

// NewOnline starts online monitoring (OSRK) of the key of x0 (predicted y0).
func NewOnline(schema *Schema, x0 Instance, y0 Label, alpha float64, seed int64) (*Online, error) {
	return cce.NewOnline(schema, x0, y0, alpha, seed)
}

// NewStatic starts deterministic monitoring (SSRK) over a known universe.
func NewStatic(schema *Schema, universe []Labeled, x0 Instance, y0 Label, alpha float64) (*Static, error) {
	return cce.NewStatic(schema, universe, x0, y0, alpha)
}

// NewWindow builds the sliding-window mode for dynamic models: capacity |I|,
// step ΔI, and a resolution policy for instances spanning windows.
func NewWindow(schema *Schema, capacity, step int, alpha float64, policy Policy) (*Window, error) {
	return cce.NewWindow(schema, capacity, step, alpha, policy)
}

// NewDriftMonitor tracks the average key succinctness of a panel of monitored
// instances; an abnormal rise signals dips in black-box model accuracy.
func NewDriftMonitor(schema *Schema, alpha float64, panelSize int, seed int64) (*DriftMonitor, error) {
	return cce.NewDriftMonitor(schema, alpha, panelSize, seed)
}

// ContextShapley estimates per-feature importance as Shapley values over the
// context's key-precision game — the §8 future-work extension of relative
// keys toward importance explanations, still requiring no model access.
func ContextShapley(ctx *Context, x Instance, y Label, samples int, seed int64) ([]float64, error) {
	return core.ContextShapley(ctx, x, y, samples, seed)
}

// OnlineShapley maintains context Shapley values over a dynamic context.
type OnlineShapley = core.OnlineShapley

// NewOnlineShapley starts online importance monitoring of x (predicted y).
func NewOnlineShapley(schema *Schema, x Instance, y Label, samples int, seed int64) (*OnlineShapley, error) {
	return core.NewOnlineShapley(schema, x, y, samples, seed)
}

// Violations counts context instances that agree with x on E but predict
// differently — zero means the key is perfectly conformant over the context.
func Violations(ctx *Context, x Instance, y Label, E Key) int {
	return core.Violations(ctx, x, y, E)
}

// IsAlphaKey verifies α-conformity of a key.
func IsAlphaKey(ctx *Context, x Instance, y Label, E Key, alpha float64) bool {
	return core.IsAlphaKey(ctx, x, y, E, alpha)
}

// Precision returns the maximum α for which E is α-conformant.
func Precision(ctx *Context, x Instance, y Label, E Key) float64 {
	return core.Precision(ctx, x, y, E)
}

// Minimize removes redundant features from a key while preserving
// α-conformity.
func Minimize(ctx *Context, x Instance, y Label, E Key, alpha float64) Key {
	return core.Minimize(ctx, x, y, E, alpha)
}
