package relativekeys_test

import (
	"errors"
	"testing"

	relativekeys "github.com/xai-db/relativekeys"
)

func loanFixture(t testing.TB) (*relativekeys.Schema, []relativekeys.Labeled) {
	t.Helper()
	schema, err := relativekeys.NewSchema([]relativekeys.Attribute{
		{Name: "Gender", Values: []string{"Male", "Female"}},
		{Name: "Income", Values: []string{"1-2K", "3-4K", "5-6K"}},
		{Name: "Credit", Values: []string{"poor", "good"}},
		{Name: "Dependent", Values: []string{"0", "1", "2"}},
	}, []string{"Denied", "Approved"})
	if err != nil {
		t.Fatal(err)
	}
	items := []relativekeys.Labeled{
		{X: relativekeys.Instance{0, 1, 0, 1}, Y: 0}, // x0
		{X: relativekeys.Instance{0, 2, 0, 1}, Y: 1},
		{X: relativekeys.Instance{1, 1, 0, 2}, Y: 0},
		{X: relativekeys.Instance{0, 1, 0, 1}, Y: 0},
		{X: relativekeys.Instance{0, 0, 0, 1}, Y: 0},
		{X: relativekeys.Instance{0, 1, 1, 0}, Y: 1},
		{X: relativekeys.Instance{0, 1, 1, 1}, Y: 1},
	}
	return schema, items
}

// TestPublicAPIRoundTrip exercises the facade end to end on the paper's
// running example.
func TestPublicAPIRoundTrip(t *testing.T) {
	schema, items := loanFixture(t)
	batch, err := relativekeys.NewBatch(schema, items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	x0, y0 := items[0].X, items[0].Y
	key, err := batch.Explain(x0, y0)
	if err != nil {
		t.Fatal(err)
	}
	if !key.Equal(relativekeys.NewKey(1, 2)) {
		t.Fatalf("key = %v, want {Income, Credit}", key.Render(schema))
	}
	if !relativekeys.IsAlphaKey(batch.Ctx, x0, y0, key, 1.0) {
		t.Fatal("key not conformant")
	}
	if p := relativekeys.Precision(batch.Ctx, x0, y0, key); p != 1 {
		t.Fatalf("precision = %v", p)
	}
	rule := key.RenderRule(schema, x0, y0)
	want := "IF Income=3-4K ∧ Credit=poor THEN Denied"
	if rule != want {
		t.Fatalf("rule = %q, want %q", rule, want)
	}
}

func TestPublicSRKAndExact(t *testing.T) {
	schema, items := loanFixture(t)
	ctx, err := relativekeys.NewContext(schema, items)
	if err != nil {
		t.Fatal(err)
	}
	x0, y0 := items[0].X, items[0].Y
	greedy, err := relativekeys.SRK(ctx, x0, y0, 6.0/7.0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := relativekeys.ExactMinKey(ctx, x0, y0, 6.0/7.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy) != 1 || len(exact) != 1 {
		t.Fatalf("α=6/7 keys: greedy %v exact %v", greedy, exact)
	}
	min := relativekeys.Minimize(ctx, x0, y0, relativekeys.NewKey(0, 1, 2, 3), 1.0)
	if v := relativekeys.Violations(ctx, x0, y0, min); v != 0 {
		t.Fatalf("minimized key has %d violations", v)
	}
}

func TestPublicOnlineModes(t *testing.T) {
	schema, items := loanFixture(t)
	x0, y0 := items[0].X, items[0].Y

	online, err := relativekeys.NewOnline(schema, x0, y0, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range items {
		if _, err := online.Observe(li); err != nil {
			t.Fatal(err)
		}
	}
	if !relativekeys.IsAlphaKey(online.Context(), x0, y0, online.Key(), 1.0) {
		t.Fatal("online key not conformant")
	}

	static, err := relativekeys.NewStatic(schema, items, x0, y0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range items {
		if _, err := static.Observe(j); err != nil {
			t.Fatal(err)
		}
	}
	if !relativekeys.IsAlphaKey(static.Context(), x0, y0, static.Key(), 1.0) {
		t.Fatal("static key not conformant")
	}
}

func TestPublicWindowAndDrift(t *testing.T) {
	schema, items := loanFixture(t)
	w, err := relativekeys.NewWindow(schema, 5, 1, 1.0, relativekeys.LastWins)
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range items {
		if err := w.Observe(li); err != nil {
			t.Fatal(err)
		}
	}
	if w.Size() != 5 {
		t.Fatalf("window size %d, want 5", w.Size())
	}
	d, err := relativekeys.NewDriftMonitor(schema, 1.0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range items {
		if err := d.Observe(li); err != nil {
			t.Fatal(err)
		}
	}
	if d.Arrivals() != len(items) {
		t.Fatal("drift monitor arrivals wrong")
	}
}

func TestPublicErrNoKey(t *testing.T) {
	schema, _ := loanFixture(t)
	conflict := []relativekeys.Labeled{
		{X: relativekeys.Instance{0, 1, 0, 1}, Y: 0},
		{X: relativekeys.Instance{0, 1, 0, 1}, Y: 1},
	}
	ctx, err := relativekeys.NewContext(schema, conflict)
	if err != nil {
		t.Fatal(err)
	}
	_, err = relativekeys.SRK(ctx, conflict[0].X, 0, 1.0)
	if !errors.Is(err, relativekeys.ErrNoKey) {
		t.Fatalf("want ErrNoKey, got %v", err)
	}
}

func TestPublicBucketer(t *testing.T) {
	b, err := relativekeys.NewBucketer(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bucket(55) != 5 {
		t.Fatalf("Bucket(55) = %d", b.Bucket(55))
	}
}

func TestPublicShapleyAndOrdered(t *testing.T) {
	schema, items := loanFixture(t)
	ctx, err := relativekeys.NewContext(schema, items)
	if err != nil {
		t.Fatal(err)
	}
	x0, y0 := items[0].X, items[0].Y

	order, err := relativekeys.SRKOrdered(ctx, x0, y0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Example 6: Credit (index 2) is picked before Income (index 1).
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("pick order = %v, want [Credit Income]", order)
	}

	phi, err := relativekeys.ContextShapley(ctx, x0, y0, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(phi) != schema.NumFeatures() {
		t.Fatalf("got %d values", len(phi))
	}
	// Credit must be the most important feature.
	best := 0
	for i, v := range phi {
		if v > phi[best] {
			best = i
		}
	}
	if best != 2 {
		t.Fatalf("top feature = %s, want Credit (φ=%v)", schema.Attrs[best].Name, phi)
	}

	on, err := relativekeys.NewOnlineShapley(schema, x0, y0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, li := range items {
		if err := on.Observe(li); err != nil {
			t.Fatal(err)
		}
	}
	top, err := on.TopFeatures(2)
	if err != nil || len(top) != 2 {
		t.Fatalf("TopFeatures: %v %v", top, err)
	}
}
